"""Tests for the main-memory model and the load/store-domain hierarchy."""

import pytest

from repro.caches import AccessOutcome, CacheHierarchy, MainMemory
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS


class TestMainMemory:
    def test_line_fill_latency_matches_table5(self):
        memory = MainMemory()
        # 80 ns first chunk + 7 subsequent 8-byte chunks at 2 ns each.
        assert memory.line_fill_latency_ps(64) == 80_000 + 7 * 2_000

    def test_row_hit_is_cheaper(self):
        memory = MainMemory()
        first = memory.access(0x1000, 64, now_ps=0)
        second = memory.access(0x1040, 64, now_ps=first)
        assert second - first < first - 0

    def test_channel_occupancy_serialises_bursts(self):
        memory = MainMemory()
        first = memory.access(0x100000, 64, now_ps=0)
        second = memory.access(0x900000, 64, now_ps=0)
        assert second > first - 80_000  # the second access queued behind the first

    def test_stats_and_reset(self):
        memory = MainMemory()
        memory.access(0, 64, 0)
        memory.access(64, 64, 0)
        assert memory.stats.accesses == 2
        memory.reset()
        assert memory.stats.accesses == 0

    def test_requires_at_least_one_bank(self):
        with pytest.raises(ValueError):
            MainMemory(banks=0)


class TestCacheHierarchy:
    def test_default_is_base_configuration(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.config.name == "32k1W/256k1W"
        assert hierarchy.l1d.a_ways == 1
        assert hierarchy.l2.a_ways == 1

    def test_l1_hit_latency(self):
        hierarchy = CacheHierarchy(b_enabled=False)
        period = 568
        hierarchy.access_data(0x1000, is_store=False, now_ps=0, period_ps=period)
        result = hierarchy.access_data(0x1000, is_store=False, now_ps=10_000, period_ps=period)
        assert result.l1_outcome is AccessOutcome.HIT_A
        assert result.completion_ps == 10_000 + 2 * period

    def test_miss_goes_to_memory(self):
        hierarchy = CacheHierarchy(b_enabled=False)
        result = hierarchy.access_data(0x5000, is_store=False, now_ps=0, period_ps=568)
        assert result.went_to_memory
        assert result.completion_ps > 80_000

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy(b_enabled=False)
        period = 568
        sets = hierarchy.l1d.num_sets
        hierarchy.access_data(0x1000, is_store=False, now_ps=0, period_ps=period)
        # Evict from the 1-way A partition by touching a conflicting block.
        hierarchy.access_data(0x1000 + sets * 64, is_store=False, now_ps=200_000, period_ps=period)
        result = hierarchy.access_data(0x1000, is_store=False, now_ps=400_000, period_ps=period)
        assert result.l1_outcome is AccessOutcome.MISS
        assert result.l2_outcome is AccessOutcome.HIT_A
        assert not result.went_to_memory

    def test_b_partition_absorbs_conflicts_in_adaptive_mode(self):
        hierarchy = CacheHierarchy(b_enabled=True)
        period = 568
        sets = hierarchy.l1d.num_sets
        hierarchy.access_data(0x1000, is_store=False, now_ps=0, period_ps=period)
        hierarchy.access_data(0x1000 + sets * 64, is_store=False, now_ps=200_000, period_ps=period)
        result = hierarchy.access_data(0x1000, is_store=False, now_ps=400_000, period_ps=period)
        assert result.l1_outcome is AccessOutcome.HIT_B
        assert not result.went_to_memory

    def test_apply_config_changes_partitioning(self):
        hierarchy = CacheHierarchy()
        hierarchy.apply_config(ADAPTIVE_DCACHE_CONFIGS[2])
        assert hierarchy.l1d.a_ways == 4
        assert hierarchy.l2.a_ways == 4
        hierarchy.apply_config(ADAPTIVE_DCACHE_CONFIGS[3])
        # The largest configuration has no B partition.
        assert hierarchy.l1d.b_ways == 0

    def test_stats_accumulate(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_data(0x100, is_store=False, now_ps=0, period_ps=568)
        hierarchy.access_data(0x200, is_store=True, now_ps=0, period_ps=568)
        assert hierarchy.stats.loads == 1
        assert hierarchy.stats.stores == 1

    def test_reset_statistics_preserves_contents(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_data(0x100, is_store=False, now_ps=0, period_ps=568)
        hierarchy.reset_statistics()
        assert hierarchy.stats.loads == 0
        result = hierarchy.access_data(0x100, is_store=False, now_ps=0, period_ps=568)
        assert result.l1_outcome is AccessOutcome.HIT_A

    def test_instruction_miss_service_from_l2(self):
        hierarchy = CacheHierarchy()
        period = 568
        first = hierarchy.access_l2_for_instruction(0x40_0000, now_ps=0, period_ps=period)
        assert first > 80_000  # cold: memory
        second = hierarchy.access_l2_for_instruction(0x40_0000, now_ps=first, period_ps=period)
        assert second - first == 12 * period  # now an L2 A-partition hit
