"""Tests for the fetch engine / front end."""


from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.pipeline.frontend import FrontEnd
from repro.timing.tables import ADAPTIVE_ICACHE_CONFIGS


def straight_line_trace(count, base_pc=0x40_0000):
    for index in range(count):
        instruction = Instruction(pc=base_pc + index * 4, op=OpClass.INT_ALU, dest="r8")
        instruction.seq = index
        yield instruction


def branchy_trace(count, taken_every=10, mispredictable=False):
    pc = 0x40_0000
    for index in range(count):
        if index % taken_every == taken_every - 1:
            instruction = Instruction(
                pc=pc, op=OpClass.BRANCH, taken=True, target=0x40_0000
            )
            pc = 0x40_0000
        else:
            instruction = Instruction(pc=pc, op=OpClass.INT_ALU, dest="r8")
            pc += 4
        instruction.seq = index
        yield instruction


def make_frontend(trace, warm_blocks=0, **kwargs):
    frontend = FrontEnd(trace, icache_config=ADAPTIVE_ICACHE_CONFIGS[0], **kwargs)
    for block in range(warm_blocks):
        frontend.warm(
            Instruction(pc=0x40_0000 + block * 64, op=OpClass.INT_ALU, dest="r8")
        )
    frontend.reset_warm_state()
    return frontend


PERIOD = 575  # ~1.74 GHz front end


class TestFetch:
    def test_fetches_up_to_width(self):
        frontend = make_frontend(straight_line_trace(100), warm_blocks=4, fetch_width=8)
        fetched = frontend.fetch_cycle(0, PERIOD)
        assert len(fetched) == 8

    def test_fetch_queue_capacity_limits_fetch(self):
        frontend = make_frontend(
            straight_line_trace(100), warm_blocks=4, fetch_queue_capacity=4
        )
        assert len(frontend.fetch_cycle(0, PERIOD)) == 4
        assert len(frontend.fetch_cycle(PERIOD, PERIOD)) == 0

    def test_dispatch_ready_time_includes_decode(self):
        frontend = make_frontend(straight_line_trace(10), warm_blocks=2, decode_cycles=2)
        fetched = frontend.fetch_cycle(1000, PERIOD)
        assert all(inst.dispatch_ready_time == 1000 + 2 * PERIOD for inst in fetched)

    def test_taken_branch_ends_fetch_cycle(self):
        frontend = make_frontend(branchy_trace(100, taken_every=4), warm_blocks=4)
        fetched = frontend.fetch_cycle(0, PERIOD)
        assert fetched[-1].is_branch or len(fetched) == 8
        assert len(fetched) <= 4 + 1  # cannot fetch past the taken branch

    def test_trace_exhaustion(self):
        frontend = make_frontend(straight_line_trace(3), warm_blocks=1)
        frontend.fetch_cycle(0, PERIOD)
        assert frontend.trace_exhausted

    def test_icache_miss_stalls_fetch(self):
        calls = []

        def miss_handler(address, now):
            calls.append(address)
            return now + 50 * PERIOD

        frontend = make_frontend(straight_line_trace(64), icache_miss_handler=miss_handler)
        first = frontend.fetch_cycle(0, PERIOD)
        assert not first  # the very first block access misses the cold I-cache
        assert calls
        assert not frontend.fetch_cycle(PERIOD, PERIOD)  # still stalled
        later = frontend.fetch_cycle(51 * PERIOD, PERIOD)
        assert later

    def test_warm_avoids_cold_miss(self):
        source = list(straight_line_trace(64))
        frontend = make_frontend(iter(source))
        for instruction in source[:32]:
            frontend.warm(instruction)
        frontend.reset_warm_state()
        fetched = frontend.fetch_cycle(0, PERIOD)
        assert fetched
        assert frontend.stats.icache_misses == 0


class TestBranchHandling:
    def test_misprediction_stalls_until_resumed(self):
        # A single hard-to-predict branch: force a misprediction by training
        # the predictor the other way first.
        instructions = list(branchy_trace(40, taken_every=2))
        frontend = make_frontend(iter(instructions))
        now = 0
        mispredicted = None
        for _ in range(40):
            fetched = frontend.fetch_cycle(now, PERIOD)
            now += PERIOD
            for inst in fetched:
                if inst.mispredicted:
                    mispredicted = inst
                    break
            if mispredicted:
                break
        assert mispredicted is not None
        assert frontend.waiting_for_branch is mispredicted
        stalled = frontend.fetch_cycle(now, PERIOD)
        assert stalled == []
        frontend.resume_after_branch(mispredicted, now + 5 * PERIOD)
        assert frontend.waiting_for_branch is None
        assert frontend.fetch_cycle(now + 6 * PERIOD, PERIOD)

    def test_resume_ignores_unrelated_branch(self):
        instructions = list(branchy_trace(40, taken_every=2))
        frontend = make_frontend(iter(instructions))
        other = instructions[0]
        fetched = frontend.fetch_cycle(0, PERIOD)
        waiting = frontend.waiting_for_branch
        if waiting is not None:
            frontend.resume_after_branch(fetched[0], 10_000)
            assert frontend.waiting_for_branch is waiting

    def test_prediction_statistics_recorded(self):
        frontend = make_frontend(branchy_trace(200, taken_every=5))
        now = 0
        for _ in range(200):
            frontend.fetch_cycle(now, PERIOD)
            waiting = frontend.waiting_for_branch
            if waiting is not None:
                frontend.resume_after_branch(waiting, now + PERIOD)
            now += PERIOD
        assert frontend.stats.branches > 0
        assert frontend.stats.mispredictions <= frontend.stats.branches


class TestConfigChanges:
    def test_apply_icache_config_repartitions(self):
        frontend = FrontEnd(
            straight_line_trace(10),
            icache_config=ADAPTIVE_ICACHE_CONFIGS[0],
            physical_geometry=ADAPTIVE_ICACHE_CONFIGS[-1].icache,
        )
        assert frontend.icache.a_ways == 1
        frontend.apply_icache_config(ADAPTIVE_ICACHE_CONFIGS[2], use_b_partition=True)
        assert frontend.icache.a_ways == 3
        frontend.apply_icache_config(ADAPTIVE_ICACHE_CONFIGS[3], use_b_partition=True)
        assert frontend.icache.b_ways == 0
