"""Integration tests for the MCD processor simulator."""

import dataclasses

import pytest

from repro.analysis.metrics import RunResult
from repro.core import (
    AdaptiveConfigIndices,
    AdaptiveControlParams,
    MCDProcessor,
    adaptive_mcd_spec,
    base_adaptive_spec,
    best_overall_synchronous_spec,
)
from repro.workloads import SyntheticTraceGenerator, WorkloadProfile


def run_machine(spec, profile, *, window=1500, warmup=1500, phase_adaptive=False,
                control=None, trace_seed=11):
    processor = MCDProcessor(spec, phase_adaptive=phase_adaptive, control=control)
    trace = SyntheticTraceGenerator(profile, seed=trace_seed)
    return processor.run(
        trace.instructions(),
        max_instructions=window,
        warmup_instructions=warmup,
        workload_name=profile.name,
    )


class TestBasicExecution:
    def test_synchronous_run_commits_requested_instructions(self, tiny_profile):
        result = run_machine(best_overall_synchronous_spec(), tiny_profile)
        assert result.committed_instructions >= 1500
        assert result.execution_time_ps > 0
        assert result.front_end_ipc > 0.2

    def test_adaptive_run_commits_requested_instructions(self, tiny_profile):
        result = run_machine(base_adaptive_spec(use_b_partitions=False), tiny_profile)
        assert result.committed_instructions >= 1500
        assert result.execution_time_ps > 0

    def test_finite_trace_drains_cleanly(self, tiny_profile):
        spec = best_overall_synchronous_spec()
        processor = MCDProcessor(spec)
        trace = SyntheticTraceGenerator(tiny_profile, seed=1).generate(400)
        result = processor.run(iter(trace), max_instructions=10_000)
        assert 0 < result.committed_instructions <= 400

    def test_all_domains_tick(self, tiny_profile):
        result = run_machine(base_adaptive_spec(use_b_partitions=False), tiny_profile)
        for domain in ("front_end", "integer", "floating_point", "load_store"):
            assert result.domain_cycles[domain] > 0

    def test_statistics_are_consistent(self, tiny_profile):
        result = run_machine(best_overall_synchronous_spec(), tiny_profile)
        assert result.branch_mispredictions <= result.branch_predictions
        assert result.l1d_misses <= result.loads + result.stores
        assert result.memory_accesses <= result.l2_misses + result.icache_misses + 5

    def test_deterministic_given_seeds(self, tiny_profile):
        first = run_machine(best_overall_synchronous_spec(), tiny_profile)
        second = run_machine(best_overall_synchronous_spec(), tiny_profile)
        assert first.execution_time_ps == second.execution_time_ps

    def test_synchronous_machine_has_no_sync_penalties(self, tiny_profile):
        result = run_machine(best_overall_synchronous_spec(), tiny_profile)
        assert result.sync_transfers == 0
        assert result.sync_penalties == 0

    def test_mcd_machine_records_sync_activity(self, tiny_profile):
        result = run_machine(base_adaptive_spec(use_b_partitions=False), tiny_profile)
        assert result.sync_transfers > 0

    def test_invalid_arguments(self, tiny_profile):
        with pytest.raises(ValueError):
            MCDProcessor(best_overall_synchronous_spec(), phase_adaptive=True)
        processor = MCDProcessor(best_overall_synchronous_spec())
        with pytest.raises(ValueError):
            processor.run(iter(()), max_instructions=0)


class TestFrequencyComplexityTradeoffs:
    def test_memory_bound_workload_gains_from_larger_caches(self, memory_bound_profile):
        """The core tradeoff of the paper: for a memory-bound workload, a
        larger (slower) D/L2 configuration beats the smallest one."""
        small = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(dcache_index=0), use_b_partitions=False),
            memory_bound_profile, window=4000, warmup=60_000,
        )
        large = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(dcache_index=3), use_b_partitions=False),
            memory_bound_profile, window=4000, warmup=60_000,
        )
        assert large.execution_time_ps < small.execution_time_ps
        assert large.l1d_misses < small.l1d_misses

    def test_small_workload_prefers_small_fast_caches(self, tiny_profile):
        small = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(dcache_index=0), use_b_partitions=False),
            tiny_profile, window=2500,
        )
        large = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(dcache_index=3), use_b_partitions=False),
            tiny_profile, window=2500,
        )
        assert small.execution_time_ps < large.execution_time_ps

    def test_large_code_footprint_gains_from_larger_icache(self):
        profile = WorkloadProfile(
            name="icache-bound", suite="test",
            code_footprint_kb=80.0, inner_window_kb=48.0,
            data_footprint_kb=32.0, hot_data_kb=8.0,
            simulation_window=2_500,
        )
        small = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(icache_index=0), use_b_partitions=False),
            profile, window=2500, warmup=25_000,
        )
        large = run_machine(
            adaptive_mcd_spec(AdaptiveConfigIndices(icache_index=3), use_b_partitions=False),
            profile, window=2500, warmup=25_000,
        )
        assert large.icache_misses < small.icache_misses
        assert large.execution_time_ps < small.execution_time_ps

    def test_mispredict_penalty_difference_costs_time(self, tiny_profile):
        spec = adaptive_mcd_spec(AdaptiveConfigIndices(), use_b_partitions=False)
        cheap = dataclasses.replace(
            spec, mispredict_front_end_cycles=9, mispredict_integer_cycles=7
        )
        expensive = dataclasses.replace(
            spec, mispredict_front_end_cycles=14, mispredict_integer_cycles=13
        )
        fast = run_machine(cheap, tiny_profile, window=2500)
        slow = run_machine(expensive, tiny_profile, window=2500)
        assert fast.execution_time_ps <= slow.execution_time_ps

    def test_disabling_sync_model_speeds_up_mcd(self, tiny_profile):
        spec = adaptive_mcd_spec(AdaptiveConfigIndices(), use_b_partitions=False)
        nosync = dataclasses.replace(spec, inter_domain_sync=False)
        with_sync = run_machine(spec, tiny_profile, window=2500)
        without_sync = run_machine(nosync, tiny_profile, window=2500)
        # The paper reports the synchronisation overhead averages below ~3%;
        # allow a generous bound (and a little noise in the other direction,
        # since removing synchronisation changes event interleaving).
        overhead = with_sync.execution_time_ps / without_sync.execution_time_ps - 1
        assert -0.03 < overhead < 0.10


class TestPhaseAdaptiveExecution:
    def control(self, window=2000):
        return AdaptiveControlParams(
            interval_instructions=max(500, window // 8), pll_interval_scaled=True
        )

    def test_phase_adaptive_runs_and_records_decisions(self, tiny_profile):
        result = run_machine(
            base_adaptive_spec(), tiny_profile, window=3000,
            phase_adaptive=True, control=self.control(3000),
        )
        assert result.committed_instructions >= 3000
        assert isinstance(result, RunResult)
        # Each interval records the chosen configuration (changed or not).
        assert result.configuration_changes

    def test_phase_adaptive_upsizes_caches_for_memory_bound_code(self):
        from repro.analysis.sweep import run_phase_adaptive, run_program_adaptive
        from repro.workloads import get_workload

        profile = get_workload("em3d")
        phase = run_phase_adaptive(profile, window=12_000)
        fixed_base = run_program_adaptive(
            profile, AdaptiveConfigIndices(), window=12_000
        )
        dcache_choices = {
            change.configuration
            for change in phase.configuration_changes
            if change.structure == "dcache"
        }
        # The controller must react to the memory-bound behaviour: either it
        # upsizes the D/L2 pair or (at minimum) the run is no slower than the
        # fixed base configuration despite controller overheads.
        assert (
            any(name != "32k1W/256k1W" for name in dcache_choices)
            or phase.execution_time_ps <= fixed_base.execution_time_ps
        )

    def test_phase_adaptive_keeps_small_caches_for_small_working_set(self, tiny_profile):
        result = run_machine(
            base_adaptive_spec(), tiny_profile, window=4000,
            phase_adaptive=True, control=self.control(4000),
        )
        final_dcache = [
            change.configuration
            for change in result.configuration_changes
            if change.structure == "dcache"
        ]
        assert final_dcache[-1] == "32k1W/256k1W"

    def test_queue_controller_reacts_to_high_ilp_phase(self):
        profile = WorkloadProfile(
            name="ilp-phase", suite="test",
            mean_dependence_distance=70.0, far_dependence_fraction=0.4,
            data_footprint_kb=32.0, hot_data_kb=8.0,
            simulation_window=6000,
        )
        processor = MCDProcessor(
            base_adaptive_spec(), phase_adaptive=True, control=self.control(6000)
        )
        trace = SyntheticTraceGenerator(profile, seed=11)
        processor.run(
            trace.instructions(), max_instructions=6000,
            warmup_instructions=3000, workload_name=profile.name,
        )
        controller = processor._int_queue_controller
        assert controller is not None and controller.decisions
        # The ILP tracker must recognise the abundant parallelism: at least
        # some windows should score a deeper queue above the 16-entry one.
        assert any(
            max(d.scores, key=d.scores.get) > 16 for d in controller.decisions
        )
