"""Tests for the CACTI-style and Palacharla timing models and the calibrated
frequency tables (Tables 1-3, Figures 2-4)."""

import pytest

from repro.timing import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_FREQUENCY_CURVE,
    ISSUE_QUEUE_FREQUENCY_GHZ,
    ISSUE_QUEUE_SIZES,
    OPTIMAL_DCACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
    CacheGeometry,
    cache_access_time_ns,
    issue_queue_delay_ns,
    issue_queue_frequency_ghz,
    selection_levels,
    adaptive_dcache_config,
    adaptive_icache_config,
    optimal_dcache_config,
    optimized_icache_config,
    issue_queue_frequency,
)
from repro.timing.cacti import cache_frequency_ghz
from repro.timing.palacharla import wakeup_delay_ns


class TestCactiModel:
    def test_access_time_grows_with_capacity(self):
        small = CacheGeometry(size_kb=16, associativity=1, sub_banks=16)
        large = CacheGeometry(size_kb=64, associativity=1, sub_banks=16)
        assert cache_access_time_ns(large) > cache_access_time_ns(small)

    def test_access_time_grows_with_associativity(self):
        direct = CacheGeometry(size_kb=32, associativity=1, sub_banks=32)
        assoc = CacheGeometry(size_kb=32, associativity=4, sub_banks=32)
        assert cache_access_time_ns(assoc) > cache_access_time_ns(direct)

    def test_direct_mapped_to_two_way_is_a_large_step(self):
        direct = CacheGeometry(size_kb=16, associativity=1, sub_banks=32)
        two_way = CacheGeometry(size_kb=32, associativity=2, sub_banks=32)
        ratio = cache_access_time_ns(two_way) / cache_access_time_ns(direct)
        assert ratio > 1.15

    def test_frequency_is_inverse_of_access_time(self):
        fast = CacheGeometry(size_kb=16, associativity=1, sub_banks=32)
        slow = CacheGeometry(size_kb=256, associativity=8, sub_banks=32)
        assert cache_frequency_ghz(fast) > cache_frequency_ghz(slow)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_kb=0, associativity=1, sub_banks=1)
        with pytest.raises(ValueError):
            CacheGeometry(size_kb=32, associativity=0, sub_banks=1)
        with pytest.raises(ValueError):
            CacheGeometry(size_kb=32, associativity=1, sub_banks=0)

    def test_num_sets(self):
        geometry = CacheGeometry(size_kb=32, associativity=1, sub_banks=32)
        assert geometry.num_sets == 32 * 1024 // 64
        geometry8 = CacheGeometry(size_kb=256, associativity=8, sub_banks=32)
        assert geometry8.num_sets == 256 * 1024 // (8 * 64)


class TestPalacharlaModel:
    def test_selection_levels_step_at_16_entries(self):
        assert selection_levels(16) == 2
        assert selection_levels(20) == 3
        assert selection_levels(64) == 3

    def test_wakeup_grows_with_entries(self):
        assert wakeup_delay_ns(64) > wakeup_delay_ns(16)

    def test_delay_monotonic_in_entries(self):
        delays = [issue_queue_delay_ns(entries) for entries in range(16, 68, 4)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_frequency_step_between_16_and_20(self):
        drop = 1 - issue_queue_frequency_ghz(20) / issue_queue_frequency_ghz(16)
        gentle = 1 - issue_queue_frequency_ghz(64) / issue_queue_frequency_ghz(20)
        assert drop > 0.15
        assert gentle < drop

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            selection_levels(0)
        with pytest.raises(ValueError):
            wakeup_delay_ns(0)


class TestFrequencyTables:
    def test_four_adaptive_dcache_configs(self):
        assert len(ADAPTIVE_DCACHE_CONFIGS) == 4
        assert [c.ways for c in ADAPTIVE_DCACHE_CONFIGS] == [1, 2, 4, 8]

    def test_dcache_capacities_match_table1(self):
        sizes = [(c.l1.size_kb, c.l2.size_kb) for c in ADAPTIVE_DCACHE_CONFIGS]
        assert sizes == [(32, 256), (64, 512), (128, 1024), (256, 2048)]

    def test_dcache_frequency_decreases_with_size(self):
        freqs = [c.frequency_ghz for c in ADAPTIVE_DCACHE_CONFIGS]
        assert freqs == sorted(freqs, reverse=True)

    def test_adaptive_dcache_minimal_config_matches_optimal(self):
        assert (
            ADAPTIVE_DCACHE_CONFIGS[0].frequency_ghz
            == OPTIMAL_DCACHE_CONFIGS[0].frequency_ghz
        )

    def test_adaptive_dcache_within_about_5_percent_of_optimal(self):
        """Figure 2: the adaptive organisation is ~5% slower when upsized."""
        for adaptive, optimal in zip(
            ADAPTIVE_DCACHE_CONFIGS[1:], OPTIMAL_DCACHE_CONFIGS[1:]
        ):
            gap = 1 - adaptive.frequency_ghz / optimal.frequency_ghz
            assert 0.0 <= gap <= 0.10

    def test_dcache_b_latency_only_for_partial_configs(self):
        assert ADAPTIVE_DCACHE_CONFIGS[0].l1_latency == (2, 8)
        assert ADAPTIVE_DCACHE_CONFIGS[-1].l1_latency == (2, None)
        assert ADAPTIVE_DCACHE_CONFIGS[0].l2_latency == (12, 43)
        assert ADAPTIVE_DCACHE_CONFIGS[-1].l2_latency == (12, None)

    def test_four_adaptive_icache_configs_match_table2(self):
        assert [c.size_kb for c in ADAPTIVE_ICACHE_CONFIGS] == [16, 32, 48, 64]
        assert [c.ways for c in ADAPTIVE_ICACHE_CONFIGS] == [1, 2, 3, 4]

    def test_icache_predictor_scales_with_cache(self):
        small = ADAPTIVE_ICACHE_CONFIGS[0].predictor
        large = ADAPTIVE_ICACHE_CONFIGS[-1].predictor
        assert large.gshare_entries > small.gshare_entries
        assert large.local_bht_entries > small.local_bht_entries

    def test_icache_dm_to_2way_drop_is_large(self):
        """Figure 3: ~31% frequency drop from direct-mapped to 2-way."""
        drop = 1 - (
            ADAPTIVE_ICACHE_CONFIGS[1].frequency_ghz
            / ADAPTIVE_ICACHE_CONFIGS[0].frequency_ghz
        )
        assert 0.25 <= drop <= 0.37

    def test_optimal_64k_dm_about_27_percent_faster_than_adaptive_64k(self):
        optimal = optimized_icache_config("64k1W").frequency_ghz
        adaptive = adaptive_icache_config("64k4W").frequency_ghz
        assert 1.20 <= optimal / adaptive <= 1.35

    def test_sixteen_optimized_icache_configs(self):
        assert len(OPTIMIZED_ICACHE_CONFIGS) == 16

    def test_optimized_direct_mapped_faster_than_same_size_set_associative(self):
        assert (
            optimized_icache_config("64k1W").frequency_ghz
            > optimized_icache_config("64k4W").frequency_ghz
        )

    def test_issue_queue_sizes(self):
        assert ISSUE_QUEUE_SIZES == (16, 32, 48, 64)

    def test_issue_queue_frequency_table(self):
        freqs = [ISSUE_QUEUE_FREQUENCY_GHZ[size] for size in ISSUE_QUEUE_SIZES]
        assert freqs == sorted(freqs, reverse=True)
        assert issue_queue_frequency(16) > issue_queue_frequency(32)

    def test_issue_queue_frequency_rejects_unknown_sizes(self):
        with pytest.raises(ValueError):
            issue_queue_frequency(24)

    def test_issue_queue_curve_covers_16_to_64(self):
        assert set(ISSUE_QUEUE_FREQUENCY_CURVE) == set(range(16, 68, 4))
        values = [ISSUE_QUEUE_FREQUENCY_CURVE[s] for s in range(16, 68, 4)]
        assert values == sorted(values, reverse=True)

    def test_lookup_by_name_and_index(self):
        assert adaptive_dcache_config(0).name == "32k1W/256k1W"
        assert adaptive_dcache_config("32k1W/256k1W").ways == 1
        assert optimal_dcache_config(3).ways == 8
        assert adaptive_icache_config("64k4W").size_kb == 64

    def test_lookup_unknown_name_raises(self):
        with pytest.raises(KeyError):
            adaptive_dcache_config("nonexistent")
