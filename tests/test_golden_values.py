"""Golden-value regression tests for the simulator's numerical behaviour.

The digests below were recorded from the seed simulator *before* the
hot-path optimisation work (edge scheduling, quiescent-phase fast-forward,
precomputed dispatch tables, trace memoisation).  Any divergence means an
optimisation changed simulated behaviour, which is never allowed: speed
work must be bit-identical.

If a PR intentionally changes the *modelling* (not just the speed), it must
update these values and say so explicitly.

History: the seed code seeded the trace and jitter RNGs with ``hash(name)``,
which is salted per process (PYTHONHASHSEED) — "deterministic" runs silently
differed between interpreter invocations, so no cross-process golden values
could exist.  The optimisation PR replaced those seeds with ``zlib.crc32``
(verified bit-identical to the seed simulator under a pinned hash seed) and
recorded the digests below, which are stable across processes and hosts.
"""

from __future__ import annotations

import pytest

from golden_digests import (
    ENERGY_GOLDEN_DIGESTS,
    energy_digest,
    golden_jobs,
    result_digest,
)
from repro.engine import run_job

#: sha256 of the canonical JSON serialisation of each golden job's RunResult.
#: The jitter-free digests were recorded from the pre-optimisation simulator;
#: the ``*_jittered*`` digests were recorded when the jitter-correct clock
#: landed (the index-addressable offset stream replaced the stateful RNG,
#: which is an intentional modelling change for jittered runs only — the
#: jitter-free digests did not move) and pin the timing-uncertainty path the
#: same way.
GOLDEN_DIGESTS = {
    "gcc/synchronous": "efbdc3d7065a9e2790b3e670ad11f0ead0da4f5af9e9817dd1b51466dbd686c2",
    "gcc/program_adaptive": "ebfa232fb92aec7af5066a5ea153d5fb53e3ef0d4f46ad58c15a7857c8180654",
    "gcc/phase_adaptive": "bffe939bc27656d5392433658e514b567e40293c5a006757acfe3e6edf891474",
    "em3d/synchronous": "3bebf624cf357354f59a59c46bdcec9cce2eedfe9c67fdfc38152b8564030b49",
    "em3d/phase_adaptive": "dbf359ae27200da9f7041d4237f351a443fb009d97b54122238ef38b2323a6a1",
    "gcc/phase_adaptive_jittered": "8c20b2cbb219fd7abdc9103c55c622ab71ee6269972bcb65c8e1f10fa30c862e",
    "em3d/program_adaptive_jittered_wide_window": "32062bfa9bba2cc895b950377bc1f5a24a1f8c51e1d812685e4f26162fb23fdf",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_run_result_matches_pre_optimisation_golden_digest(name):
    job = golden_jobs()[name]
    assert result_digest(run_job(job)) == GOLDEN_DIGESTS[name], (
        f"RunResult for {name} diverged from the recorded pre-optimisation "
        "behaviour; hot-path changes must be bit-identical"
    )


@pytest.mark.parametrize("name", sorted(ENERGY_GOLDEN_DIGESTS))
def test_energy_accounting_matches_golden_digest(name):
    """Pin the activity counters and the energy model's arithmetic.

    The energy digest covers the post-timing ``RunResult`` fields plus the
    derived :class:`~repro.energy.EnergyReport`; the timing digests above
    separately guarantee that recording this activity never perturbed
    simulated behaviour.
    """
    job = golden_jobs()[name]
    assert energy_digest(run_job(job)) == ENERGY_GOLDEN_DIGESTS[name], (
        f"energy accounting for {name} diverged from the recorded breakdown; "
        "counter or energy-model changes must be intentional and declared"
    )
