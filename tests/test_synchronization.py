"""Tests for clock-domain synchronisation and the PLL model."""

import pytest

from repro.clocks import DomainClock
from repro.core import PLLModel, SynchronizationModel


class TestSynchronizationModel:
    def test_disabled_model_is_free(self):
        model = SynchronizationModel(enabled=False)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 1.3)
        assert model.transfer(12_345, producer, consumer) == 12_345
        assert model.stats.transfers == 0

    def test_same_clock_is_free(self):
        model = SynchronizationModel(enabled=True)
        clock = DomainClock("a", 1.0)
        assert model.transfer(777, clock, clock) == 777

    def test_transfer_aligns_to_consumer_edge(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)   # 1000 ps period
        consumer = DomainClock("b", 0.5)   # 2000 ps period
        # Event at 900 ps: next consumer edge is 2000 ps, comfortably outside
        # the 30% window (0.3 * 1000 = 300 ps).
        assert model.transfer(900, producer, consumer) == 2000

    def test_transfer_penalty_when_edges_close(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.5)
        # Event at 1900 ps: consumer edge at 2000 ps is only 100 ps away,
        # inside the 300 ps window, so one extra consumer cycle is charged.
        assert model.transfer(1900, producer, consumer) == 4000
        assert model.stats.penalties == 1

    def test_fifo_crossing_skips_penalty(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.5)
        assert model.transfer(1900, producer, consumer, fifo=True) == 2000

    def test_record_false_suppresses_stats(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.7)
        model.transfer(100, producer, consumer, record=False)
        assert model.stats.transfers == 0

    def test_penalty_rate(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.7)
        consumer = DomainClock("b", 1.1)
        for time in range(0, 100_000, 777):
            model.transfer(time, producer, consumer)
        assert 0.0 < model.stats.penalty_rate < 1.0

    def test_window_fraction_validation(self):
        with pytest.raises(ValueError):
            SynchronizationModel(window_fraction=1.5)

    def test_reset(self):
        model = SynchronizationModel(enabled=True)
        model.transfer(100, DomainClock("a", 1.0), DomainClock("b", 1.2))
        model.reset()
        assert model.stats.transfers == 0


class TestPLLModel:
    def test_paper_mode_within_bounds(self):
        pll = PLLModel(interval_scaled=False, seed=3)
        for _ in range(100):
            lock = pll.sample_lock_ps()
            assert 10_000_000 <= lock <= 20_000_000

    def test_interval_scaled_mode_tracks_interval(self):
        pll = PLLModel(interval_scaled=True, seed=3)
        for _ in range(50):
            lock = pll.sample_lock_ps(1_000_000)
            assert 700_000 <= lock <= 1_300_000

    def test_interval_scaled_without_reference_falls_back(self):
        pll = PLLModel(interval_scaled=True, seed=3)
        assert pll.sample_lock_ps(None) >= 10_000_000

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PLLModel(mean_us=5.0, min_us=10.0, max_us=20.0)

    def test_determinism_with_seed(self):
        first = [PLLModel(seed=9).sample_lock_ps() for _ in range(5)]
        second = [PLLModel(seed=9).sample_lock_ps() for _ in range(5)]
        assert first == second
