"""Tests for clock-domain synchronisation and the PLL model."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks import DomainClock
from repro.core import PLLModel, SynchronizationModel


class TestSynchronizationModel:
    def test_disabled_model_is_free(self):
        model = SynchronizationModel(enabled=False)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 1.3)
        assert model.transfer(12_345, producer, consumer) == 12_345
        assert model.stats.transfers == 0

    def test_same_clock_is_free(self):
        model = SynchronizationModel(enabled=True)
        clock = DomainClock("a", 1.0)
        assert model.transfer(777, clock, clock) == 777

    def test_transfer_aligns_to_consumer_edge(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)   # 1000 ps period
        consumer = DomainClock("b", 0.5)   # 2000 ps period
        # Event at 900 ps: next consumer edge is 2000 ps, comfortably outside
        # the 30% window (0.3 * 1000 = 300 ps).
        assert model.transfer(900, producer, consumer) == 2000

    def test_transfer_penalty_when_edges_close(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.5)
        # Event at 1900 ps: consumer edge at 2000 ps is only 100 ps away,
        # inside the 300 ps window, so one extra consumer cycle is charged.
        assert model.transfer(1900, producer, consumer) == 4000
        assert model.stats.penalties == 1

    def test_fifo_crossing_skips_penalty(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.5)
        assert model.transfer(1900, producer, consumer, fifo=True) == 2000

    def test_record_false_suppresses_stats(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.7)
        model.transfer(100, producer, consumer, record=False)
        assert model.stats.transfers == 0

    def test_penalty_rate(self):
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.7)
        consumer = DomainClock("b", 1.1)
        for time in range(0, 100_000, 777):
            model.transfer(time, producer, consumer)
        assert 0.0 < model.stats.penalty_rate < 1.0

    def test_window_fraction_validation(self):
        with pytest.raises(ValueError):
            SynchronizationModel(window_fraction=1.5)

    def test_reset(self):
        model = SynchronizationModel(enabled=True)
        model.transfer(100, DomainClock("a", 1.0), DomainClock("b", 1.2))
        model.reset()
        assert model.stats.transfers == 0


class TestTransferBoundaries:
    """Edge cases of the arbitration-window model: exact edge coincidence,
    integer truncation of the window, and mid-run frequency changes."""

    def test_event_exactly_on_consumer_edge_pays_penalty(self):
        # An event landing exactly on the capture edge is the worst case for
        # the synchroniser: the margin is zero, inside any non-zero window.
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)  # 1000 ps
        consumer = DomainClock("b", 0.5)  # 2000 ps
        assert model.transfer(2000, producer, consumer) == 4000
        assert model.stats.penalties == 1

    def test_event_exactly_on_edge_with_zero_window_is_free(self):
        model = SynchronizationModel(enabled=True, window_fraction=0.0)
        producer = DomainClock("a", 1.0)
        consumer = DomainClock("b", 0.5)
        assert model.transfer(2000, producer, consumer) == 2000
        assert model.stats.penalties == 0

    def test_window_is_truncated_to_integer_picoseconds(self):
        # 0.333 * 1000 ps = 333.0 exactly after int(): a margin of exactly
        # 333 ps is *outside* the window (edge - event < window is strict),
        # 332 ps is inside.
        model = SynchronizationModel(enabled=True, window_fraction=0.333)
        producer = DomainClock("a", 1.0)   # 1000 ps (the faster clock)
        consumer = DomainClock("b", 0.5)   # 2000 ps
        assert model.transfer(2000 - 333, producer, consumer) == 2000
        assert model.stats.penalties == 0
        assert model.transfer(2000 - 332, producer, consumer) == 4000
        assert model.stats.penalties == 1

    def test_transfer_spanning_a_frequency_change(self):
        # The consumer re-locks to half frequency after consuming one edge:
        # the new period applies from the next edge onward, and the transfer
        # model sees exactly what the hardware would.
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("a", 1.0)   # 1000 ps
        consumer = DomainClock("b", 1.0)   # 1000 ps, edges 0, 1000, ...
        consumer.advance()                 # next edge at 1000
        consumer.set_frequency(0.5)        # 2000 ps from the next edge on
        # Event at 1500 ps: the next consumer edge is 1000 + 2000 = 3000 ps
        # (not the pre-change 2000 ps), margin 1500 ps > window 300 ps.
        assert model.transfer(1500, producer, consumer) == 3000
        assert model.stats.penalties == 0
        # Inside the window relative to the post-change edge: penalty is one
        # *new-period* consumer cycle.
        assert model.transfer(2900, producer, consumer) == 5000
        assert model.stats.penalties == 1


class TestJitteredTransfers:
    """After the jitter rework every cross-domain transfer time must coincide
    with an edge the consumer clock actually produces."""

    @staticmethod
    def _actual_edges(template_kwargs, up_to):
        clock = DomainClock(**template_kwargs)
        edges = {clock.next_edge}
        while clock.next_edge <= up_to:
            edges.add(clock.advance())
        return edges

    @given(st.integers(min_value=0, max_value=100_000))
    def test_transfer_lands_on_a_real_consumer_edge(self, event_time):
        consumer_kwargs = dict(
            name="consumer", frequency_ghz=0.7, jitter_fraction=0.1, seed=9
        )
        model = SynchronizationModel(enabled=True)
        producer = DomainClock("producer", 1.3, jitter_fraction=0.1, seed=9)
        consumer = DomainClock(**consumer_kwargs)
        arrival = model.transfer(event_time, producer, consumer)
        assert arrival >= event_time
        assert arrival in self._actual_edges(consumer_kwargs, arrival)

    @given(st.integers(min_value=0, max_value=100_000))
    def test_penalised_transfer_lands_on_the_following_real_edge(self, event_time):
        # Force every transfer into the unsafe window with a near-full-period
        # window fraction, then check the penalty edge is the true successor.
        consumer_kwargs = dict(
            name="consumer", frequency_ghz=0.9, jitter_fraction=0.2, seed=5
        )
        model = SynchronizationModel(enabled=True, window_fraction=0.99)
        producer = DomainClock("producer", 1.1)
        consumer = DomainClock(**consumer_kwargs)
        capture = consumer.edge_at_or_after(event_time)
        arrival = model.transfer(event_time, producer, consumer)
        edges = sorted(self._actual_edges(consumer_kwargs, arrival + 1))
        assert arrival in edges
        if arrival != capture:  # the penalty path fired
            assert edges[edges.index(capture) + 1] == arrival


class TestPLLModel:
    def test_paper_mode_within_bounds(self):
        pll = PLLModel(interval_scaled=False, seed=3)
        for _ in range(100):
            lock = pll.sample_lock_ps()
            assert 10_000_000 <= lock <= 20_000_000

    def test_interval_scaled_mode_tracks_interval(self):
        pll = PLLModel(interval_scaled=True, seed=3)
        for _ in range(50):
            lock = pll.sample_lock_ps(1_000_000)
            assert 700_000 <= lock <= 1_300_000

    def test_interval_scaled_without_reference_falls_back(self):
        pll = PLLModel(interval_scaled=True, seed=3)
        assert pll.sample_lock_ps(None) >= 10_000_000

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PLLModel(mean_us=5.0, min_us=10.0, max_us=20.0)

    def test_determinism_with_seed(self):
        first = [PLLModel(seed=9).sample_lock_ps() for _ in range(5)]
        second = [PLLModel(seed=9).sample_lock_ps() for _ in range(5)]
        assert first == second
