"""Tests for the timing-uncertainty sensitivity driver."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    AXIS_CACHE_HYSTERESIS,
    AXIS_INTERVAL,
    AXIS_JITTER,
    AXIS_SYNC_WINDOW,
    SensitivityAxis,
    sensitivity_sweep,
)
from repro.engine import ExperimentEngine, ResultCache, SerialExecutor
from repro.workloads import WorkloadProfile


@pytest.fixture(scope="module")
def quick_profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="sensitivity-quick", suite="test",
        code_footprint_kb=4.0, inner_window_kb=2.0,
        data_footprint_kb=48.0, hot_data_kb=12.0,
        simulation_window=1_000,
    )


@pytest.fixture(scope="module")
def report(quick_profile):
    return sensitivity_sweep(
        [quick_profile],
        jitter_fractions=(0.05,),
        sync_window_fractions=(0.45,),
        interval_scales=(0.5,),
        cache_hysteresis_values=(0.0,),
        queue_hysteresis_values=(),
        window=700,
        warmup=1_200,
        engine=ExperimentEngine(SerialExecutor(), ResultCache()),
    )


class TestSensitivitySweep:
    def test_grid_structure(self, report, quick_profile):
        assert report.workloads == [quick_profile.name]
        assert [point.axis for point in report.points] == [
            AXIS_JITTER,
            AXIS_SYNC_WINDOW,
            AXIS_INTERVAL,
            AXIS_CACHE_HYSTERESIS,
        ]
        for point in report.points:
            assert len(point.per_workload) == 1
            assert point.per_workload[0].workload == quick_profile.name

    def test_deltas_measured_against_jitter_free_baseline(self, report):
        baseline_row = report.baseline[0]
        for point in report.points:
            cell = point.per_workload[0]
            assert cell.program_delta == pytest.approx(
                cell.program_improvement - baseline_row.program_improvement
            )
            assert cell.phase_delta == pytest.approx(
                cell.phase_improvement - baseline_row.phase_improvement
            )

    def test_jitter_point_actually_changes_the_mcd_runs(self, report):
        jitter_point = report.points_for(AXIS_JITTER)[0]
        baseline_row = report.baseline[0]
        # Jitter must reach the simulation: a perturbed MCD machine cannot be
        # numerically identical to the jitter-free one on both metrics.
        cell = jitter_point.per_workload[0]
        assert (
            cell.program_improvement != baseline_row.program_improvement
            or cell.phase_improvement != baseline_row.phase_improvement
        )

    def test_controller_axis_program_jobs_served_from_cache(self, quick_profile):
        """Controller knobs do not exist on the Program-Adaptive machine, so
        those grid points must reuse the baseline's cached program run."""
        engine = ExperimentEngine(SerialExecutor(), ResultCache())
        sensitivity_sweep(
            [quick_profile],
            jitter_fractions=(),
            sync_window_fractions=(),
            interval_scales=(0.5,),
            cache_hysteresis_values=(),
            queue_hysteresis_values=(),
            window=700,
            warmup=1_200,
            engine=engine,
        )
        assert engine.stats.cache_hits >= 1

    def test_render_mentions_every_axis(self, report):
        text = report.render()
        assert "baseline" in text
        for point in report.points:
            assert point.axis in text

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            SensitivityAxis("not_an_axis", (1.0,))

    def test_deterministic_across_engines(self, report, quick_profile):
        again = sensitivity_sweep(
            [quick_profile],
            jitter_fractions=(0.05,),
            sync_window_fractions=(0.45,),
            interval_scales=(0.5,),
            cache_hysteresis_values=(0.0,),
            queue_hysteresis_values=(),
            window=700,
            warmup=1_200,
            engine=ExperimentEngine(SerialExecutor(), ResultCache()),
        )
        for first, second in zip(report.points, again.points):
            assert first.axis == second.axis
            assert first.value == second.value
            assert first.per_workload == second.per_workload
