"""Tests for the synthetic workload substrate and the benchmark suite."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import OpClass
from repro.workloads import (
    BENCHMARK_SUITES,
    PhaseSpec,
    SyntheticTraceGenerator,
    WorkloadProfile,
    full_suite,
    get_workload,
    mediabench_suite,
    olden_suite,
    spec2000_suite,
    workload_names,
)
from repro.workloads.generator import CODE_BASE, HOT_DATA_BASE
from repro.workloads.phases import (
    burst_schedule,
    bursty_conflict_phases,
    periodic_data_phases,
    periodic_ilp_phases,
    ramp,
    square_wave,
    triangle,
)


class TestWorkloadProfile:
    def test_validation_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="t", load_fraction=0.7)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="t", load_fraction=0.5, store_fraction=0.4)

    def test_validation_rejects_bad_footprints(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="t", inner_window_kb=16.0, code_footprint_kb=8.0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="t", hot_data_kb=128.0, data_footprint_kb=64.0)

    def test_with_overrides(self):
        profile = WorkloadProfile(name="x", suite="t")
        changed = profile.with_overrides(hot_data_kb=8.0)
        assert changed.hot_data_kb == 8.0
        assert profile.hot_data_kb == 16.0
        with pytest.raises(ValueError):
            profile.with_overrides(nonexistent=1)

    def test_scaled_window(self):
        profile = WorkloadProfile(name="x", suite="t", simulation_window=20_000)
        assert profile.scaled(0.5).simulation_window == 10_000
        assert profile.scaled(1e-9).simulation_window == 1_000
        with pytest.raises(ValueError):
            profile.scaled(0)

    def test_phase_spec_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec(length=0)
        with pytest.raises(ValueError):
            PhaseSpec(length=100, overrides={"block_size": 4})

    def test_is_floating_point(self):
        assert WorkloadProfile(name="x", suite="t", fp_fraction=0.4).is_floating_point
        assert not WorkloadProfile(name="x", suite="t", fp_fraction=0.05).is_floating_point


class TestSuite:
    def test_suite_sizes_match_tables_6_to_8(self):
        assert len(mediabench_suite()) == 16  # 8 applications, encode/decode variants
        assert len(olden_suite()) == 9
        assert len(spec2000_suite()) == 15
        assert len(full_suite()) == 40

    def test_all_names_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_get_workload(self):
        assert get_workload("gcc").suite == "SPEC2000-Int"
        with pytest.raises(KeyError):
            get_workload("not-a-benchmark")

    def test_suites_keyed_consistently(self):
        for suite_name, profiles in BENCHMARK_SUITES.items():
            for profile in profiles:
                assert profile.suite == suite_name

    def test_paper_windows_recorded(self):
        assert all(profile.paper_window for profile in full_suite())

    def test_phased_workloads_present(self):
        assert get_workload("apsi").has_phases
        assert get_workload("art").has_phases
        assert get_workload("mst").has_phases

    def test_memory_bound_benchmarks_have_large_working_sets(self):
        for name in ("em3d", "health", "mst", "art"):
            assert get_workload(name).data_footprint_kb >= 1000

    def test_instruction_bound_benchmarks_have_large_code(self):
        for name in ("gsm_encode", "ghostscript", "gcc", "vortex", "crafty"):
            assert get_workload(name).code_footprint_kb > 48

    def test_most_workloads_fit_the_smallest_caches(self):
        """Table 9: about half of the applications prefer the smallest
        configuration, so about half must have small working sets."""
        small_data = sum(1 for p in full_suite() if p.hot_data_kb <= 32)
        small_code = sum(1 for p in full_suite() if p.code_footprint_kb <= 16)
        assert small_data >= len(full_suite()) * 0.4
        assert small_code >= len(full_suite()) * 0.4


class TestPhaseHelpers:
    def test_periodic_data_phases_alternate_capacity(self):
        phases = periodic_data_phases()
        assert len(phases) == 2
        assert phases[0].overrides["hot_data_kb"] < phases[1].overrides["hot_data_kb"]

    def test_periodic_ilp_phases_cycle_distances(self):
        phases = periodic_ilp_phases()
        distances = [p.overrides["mean_dependence_distance"] for p in phases]
        assert distances == sorted(distances)

    def test_bursty_phases_are_asymmetric(self):
        quiet, burst = bursty_conflict_phases()
        assert quiet.length > burst.length


class TestGenerator:
    def test_determinism(self, tiny_profile):
        first = SyntheticTraceGenerator(tiny_profile, seed=7).generate(2000)
        second = SyntheticTraceGenerator(tiny_profile, seed=7).generate(2000)
        assert [i.pc for i in first] == [i.pc for i in second]
        assert [i.op for i in first] == [i.op for i in second]
        assert [i.address for i in first] == [i.address for i in second]

    def test_different_seeds_differ(self, tiny_profile):
        first = SyntheticTraceGenerator(tiny_profile, seed=1).generate(2000)
        second = SyntheticTraceGenerator(tiny_profile, seed=2).generate(2000)
        assert [i.address for i in first] != [i.address for i in second]

    def test_sequence_numbers_are_dense(self, tiny_profile):
        trace = SyntheticTraceGenerator(tiny_profile).generate(500)
        assert [inst.seq for inst in trace] == list(range(500))

    def test_instruction_mix_close_to_profile(self):
        profile = WorkloadProfile(
            name="mix", suite="t", load_fraction=0.3, store_fraction=0.1,
            fp_fraction=0.4, simulation_window=1000,
        )
        trace = SyntheticTraceGenerator(profile, seed=3).generate(30_000)
        counts = Counter(inst.op for inst in trace)
        total = len(trace)
        loads = counts[OpClass.LOAD] / total
        stores = counts[OpClass.STORE] / total
        assert abs(loads - 0.3 * (1 - _branch_share(counts, total))) < 0.08
        assert abs(stores - 0.1 * (1 - _branch_share(counts, total))) < 0.05
        fp_ops = sum(counts[op] for op in (OpClass.FP_ALU, OpClass.FP_MULT, OpClass.FP_DIV))
        assert fp_ops > 0

    def test_pcs_stay_within_code_footprint(self, tiny_profile):
        trace = SyntheticTraceGenerator(tiny_profile).generate(5000)
        footprint_bytes = int(tiny_profile.code_footprint_kb * 1024)
        for inst in trace:
            assert CODE_BASE <= inst.pc < CODE_BASE + footprint_bytes

    def test_data_addresses_stay_within_footprint(self, tiny_profile):
        trace = SyntheticTraceGenerator(tiny_profile).generate(5000)
        footprint_bytes = int(tiny_profile.data_footprint_kb * 1024)
        for inst in trace:
            if inst.is_memory_op:
                assert HOT_DATA_BASE <= inst.address < HOT_DATA_BASE + footprint_bytes + 64

    def test_branches_have_targets_and_memory_ops_addresses(self, tiny_profile):
        for inst in SyntheticTraceGenerator(tiny_profile).generate(3000):
            if inst.is_branch:
                assert inst.target is not None
            if inst.is_memory_op:
                assert inst.address is not None
            else:
                assert inst.address is None

    def test_control_flow_is_consistent(self, tiny_profile):
        """The next instruction's PC must equal the previous instruction's
        architectural next PC (no teleporting in the trace)."""
        trace = SyntheticTraceGenerator(tiny_profile).generate(4000)
        for previous, current in zip(trace, trace[1:]):
            assert current.pc == previous.next_pc

    def test_phases_change_generation_parameters(self):
        profile = WorkloadProfile(
            name="phased", suite="t",
            data_footprint_kb=512.0, hot_data_kb=16.0,
            phases=(
                PhaseSpec(length=2000, overrides={"hot_data_kb": 8.0}),
                PhaseSpec(length=2000, overrides={"hot_data_kb": 256.0}),
            ),
        )
        generator = SyntheticTraceGenerator(profile, seed=11)
        first_phase = generator.generate(2000)
        second_phase = generator.generate(2000)

        def hot_region_share(instructions, region_kb):
            memory_ops = [i for i in instructions if i.is_memory_op]
            within = sum(
                1
                for i in memory_ops
                if (i.address or 0) - HOT_DATA_BASE < region_kb * 1024
            )
            return within / max(1, len(memory_ops))

        # Phase one confines its hot accesses to 8 KB; phase two spreads them
        # over 256 KB, so far fewer of its accesses land in the first 8 KB.
        assert hot_region_share(first_phase, 8) > hot_region_share(second_phase, 8) + 0.2

    def test_larger_dependence_distance_raises_measured_ilp(self):
        serial = WorkloadProfile(name="serial", suite="t", mean_dependence_distance=2.0,
                                 far_dependence_fraction=0.05)
        parallel = WorkloadProfile(name="parallel", suite="t", mean_dependence_distance=25.0,
                                   far_dependence_fraction=0.3)
        assert _dependence_height(serial) > _dependence_height(parallel)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_any_seed_produces_valid_instructions(self, seed):
        profile = WorkloadProfile(name="prop", suite="t", simulation_window=1000)
        for inst in SyntheticTraceGenerator(profile, seed=seed).generate(400):
            assert inst.pc >= CODE_BASE
            if inst.is_memory_op:
                assert inst.address is not None and inst.address % 8 == 0


def _branch_share(counts, total):
    return counts[OpClass.BRANCH] / total


def _dependence_height(profile, count=3000):
    """Average dependence-chain height per instruction over a window."""
    trace = SyntheticTraceGenerator(profile, seed=5).generate(count)
    timestamps: dict[str, int] = {}
    height_total = 0
    for inst in trace:
        height = 1 + max((timestamps.get(s, 0) for s in inst.sources), default=0)
        if inst.dest is not None:
            timestamps[inst.dest] = height
        height_total += height
    return height_total / count


class TestProfileValidate:
    """Boundaries of WorkloadProfile.validate (the deep, per-phase checker)."""

    def test_valid_profiles_chain(self, tiny_profile):
        assert tiny_profile.validate() is tiny_profile

    def test_every_suite_profile_validates(self):
        for profile in full_suite():
            profile.validate()

    def test_phase_override_fraction_above_one_rejected(self):
        profile = WorkloadProfile(
            name="x",
            suite="t",
            phases=(PhaseSpec(length=100, overrides={"hot_data_fraction": 1.5}),),
        )
        with pytest.raises(ValueError, match=r"phase 0.*hot_data_fraction"):
            profile.validate()

    def test_phase_override_negative_footprint_rejected(self):
        profile = WorkloadProfile(
            name="x",
            suite="t",
            phases=(PhaseSpec(length=100, overrides={"data_footprint_kb": -1.0}),),
        )
        with pytest.raises(ValueError, match="positive"):
            profile.validate()

    def test_phase_hot_region_beyond_footprint_rejected(self):
        # The base profile is consistent; only the phase's effective values
        # break the invariant — exactly what __post_init__ cannot see.
        profile = WorkloadProfile(
            name="x",
            suite="t",
            data_footprint_kb=64.0,
            hot_data_kb=16.0,
            phases=(PhaseSpec(length=100, overrides={"hot_data_kb": 128.0}),),
        )
        with pytest.raises(ValueError, match="cannot exceed"):
            profile.validate()

    def test_phase_memory_mix_overflow_rejected(self):
        profile = WorkloadProfile(
            name="x",
            suite="t",
            phases=(
                PhaseSpec(
                    length=100,
                    overrides={"load_fraction": 0.6, "store_fraction": 0.5},
                ),
            ),
        )
        with pytest.raises(ValueError, match="no room for compute"):
            profile.validate()

    def test_phase_dependence_distance_below_one_rejected(self):
        profile = WorkloadProfile(
            name="x",
            suite="t",
            phases=(PhaseSpec(length=100, overrides={"mean_dependence_distance": 0.5}),),
        )
        with pytest.raises(ValueError, match="mean_dependence_distance"):
            profile.validate()

    def test_boundary_values_accepted(self):
        # Exactly-on-the-boundary values are legal: fractions of 0 and 1, a
        # hot region equal to the footprint, distance exactly 1.
        WorkloadProfile(
            name="x",
            suite="t",
            phases=(
                PhaseSpec(
                    length=1,
                    overrides={
                        "hot_data_fraction": 0.0,
                        "sequential_fraction": 1.0,
                        "hot_data_kb": 64.0,
                        "data_footprint_kb": 64.0,
                        "mean_dependence_distance": 1.0,
                    },
                ),
            ),
        ).validate()

    def test_messages_name_the_offending_context(self):
        profile = WorkloadProfile(
            name="culprit",
            suite="t",
            phases=(
                PhaseSpec(length=100),
                PhaseSpec(length=100, overrides={"far_dependence_fraction": 2.0}),
            ),
        )
        with pytest.raises(ValueError, match=r"'culprit', phase 1"):
            profile.validate()


class TestGeneratorExtremes:
    """Scenario-style extremes: degenerate phases and boundary fractions."""

    def _profile(self, **kwargs) -> WorkloadProfile:
        defaults = dict(
            name="extreme-test",
            suite="test",
            code_footprint_kb=4.0,
            inner_window_kb=2.0,
            data_footprint_kb=64.0,
            hot_data_kb=16.0,
            simulation_window=2_000,
        )
        defaults.update(kwargs)
        return WorkloadProfile(**defaults)

    def test_zero_length_phase_is_unrepresentable(self):
        with pytest.raises(ValueError, match="positive"):
            PhaseSpec(length=0)
        with pytest.raises(ValueError, match="positive"):
            PhaseSpec(length=-5)

    def test_singleton_phases_advance_every_instruction(self):
        profile = self._profile(
            phases=(
                PhaseSpec(length=1, overrides={"hot_data_fraction": 0.0}),
                PhaseSpec(length=1, overrides={"hot_data_fraction": 1.0}),
            )
        )
        generator = SyntheticTraceGenerator(profile, seed=3)
        indices = []
        for _ in range(64):
            generator.generate(1)
            indices.append(generator.current_phase_index)
        # One-instruction phases flip the phase index on every instruction.
        assert set(indices) == {0, 1}
        assert all(a != b for a, b in zip(indices, indices[1:]))

    def test_hot_fraction_zero_touches_only_the_cold_region(self):
        profile = self._profile(hot_data_fraction=0.0)
        hot_bytes = int(profile.hot_data_kb * 1024)
        addresses = [
            inst.address
            for inst in SyntheticTraceGenerator(profile, seed=11).generate(4_000)
            if inst.address is not None
        ]
        assert addresses
        assert all(address >= HOT_DATA_BASE + hot_bytes for address in addresses)

    def test_hot_fraction_one_touches_only_the_hot_region(self):
        profile = self._profile(hot_data_fraction=1.0)
        hot_bytes = int(profile.hot_data_kb * 1024)
        addresses = [
            inst.address
            for inst in SyntheticTraceGenerator(profile, seed=11).generate(4_000)
            if inst.address is not None
        ]
        assert addresses
        assert all(
            HOT_DATA_BASE <= address < HOT_DATA_BASE + hot_bytes for address in addresses
        )

    def test_phase_override_round_trip_preserves_the_stream(self):
        # PhaseSpec -> dict -> PhaseSpec must reproduce the exact trace.
        phases = (
            PhaseSpec(length=37, overrides={"hot_data_fraction": 0.0}),
            PhaseSpec(
                length=501,
                overrides={"mean_dependence_distance": 1.0, "sequential_fraction": 1.0},
            ),
        )
        rebuilt = tuple(PhaseSpec.from_dict(phase.to_dict()) for phase in phases)
        assert rebuilt == phases
        original = self._profile(phases=phases)
        round_tripped = WorkloadProfile.from_dict(original.to_dict())
        assert round_tripped == original
        a = SyntheticTraceGenerator(original, seed=5).generate(3_000)
        b = SyntheticTraceGenerator(round_tripped, seed=5).generate(3_000)
        assert a == b

    def test_extreme_phase_profile_replays_identically_from_the_cache(self):
        from repro.workloads.trace_cache import cached_trace, clear_trace_cache

        profile = self._profile(
            phases=(
                PhaseSpec(length=1, overrides={"hot_data_fraction": 1.0}),
                PhaseSpec(length=613, overrides={"hot_data_fraction": 0.0}),
            )
        )
        clear_trace_cache()
        try:
            fresh = SyntheticTraceGenerator(profile, seed=8).generate(3_000)
            cached = cached_trace(profile, seed=8)
            first = cached.generate(3_000)
            assert first == fresh
            # A second consumer (fresh iterator) replays the same objects.
            replayed = []
            iterator = cached.instructions()
            for _ in range(3_000):
                replayed.append(next(iterator))
            assert all(x is y for x, y in zip(first, replayed))
        finally:
            clear_trace_cache()


class TestScheduleBuilders:
    """The generic schedule vocabulary used by the scenario subsystem."""

    def test_square_wave_period_and_duty(self):
        low, high = {"hot_data_kb": 8.0}, {"hot_data_kb": 64.0}
        phases = square_wave(low, high, period=1_000, duty=0.25)
        assert sum(phase.length for phase in phases) == 1_000
        assert phases[0].overrides["hot_data_kb"] == 8.0
        assert phases[1].overrides["hot_data_kb"] == 64.0
        assert phases[1].length == 250

    def test_square_wave_extreme_duty_keeps_both_phases(self):
        phases = square_wave({"hot_data_kb": 8.0}, {"hot_data_kb": 64.0}, period=10, duty=0.999)
        assert all(phase.length >= 1 for phase in phases)
        assert sum(phase.length for phase in phases) == 10

    def test_square_wave_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            square_wave({}, {}, period=1)
        with pytest.raises(ValueError):
            square_wave({}, {}, period=100, duty=0.0)
        with pytest.raises(ValueError):
            square_wave({}, {}, period=100, duty=1.0)

    def test_ramp_interpolates_linearly(self):
        phases = ramp(
            {"hot_data_kb": 0.0}, {"hot_data_kb": 100.0}, steps=5, total_length=1_000
        )
        assert [phase.overrides["hot_data_kb"] for phase in phases] == [
            0.0,
            25.0,
            50.0,
            75.0,
            100.0,
        ]
        assert sum(phase.length for phase in phases) == 1_000

    def test_ramp_distributes_the_remainder(self):
        phases = ramp({"hot_data_kb": 1.0}, {"hot_data_kb": 2.0}, steps=3, total_length=100)
        assert [phase.length for phase in phases] == [34, 33, 33]

    def test_ramp_rejects_mismatched_endpoints(self):
        with pytest.raises(ValueError, match="same fields"):
            ramp({"hot_data_kb": 1.0}, {"sequential_fraction": 0.5}, steps=2, total_length=10)

    def test_ramp_rejects_non_numeric_fields(self):
        with pytest.raises(ValueError, match="numeric"):
            ramp({"hot_data_kb": "a"}, {"hot_data_kb": "b"}, steps=2, total_length=10)

    def test_triangle_rises_then_falls_holding_the_peak_once(self):
        phases = triangle(
            {"mean_dependence_distance": 4.0},
            {"mean_dependence_distance": 40.0},
            steps=3,
            period=600,
        )
        values = [phase.overrides["mean_dependence_distance"] for phase in phases]
        # The wrap back to phase 0 supplies the trough, so the cycle holds
        # peak and trough exactly once each and sums to the exact period.
        assert values == [4.0, 22.0, 40.0, 22.0]
        assert sum(phase.length for phase in phases) == 600

    def test_triangle_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError, match="at least 2 steps"):
            triangle({"hot_data_kb": 1.0}, {"hot_data_kb": 2.0}, steps=1, period=100)
        with pytest.raises(ValueError, match="period"):
            triangle({"hot_data_kb": 1.0}, {"hot_data_kb": 2.0}, steps=3, period=3)

    def test_burst_schedule_is_asymmetric(self):
        quiet, burst = burst_schedule(
            {"hot_data_kb": 8.0},
            {"hot_data_kb": 64.0},
            quiet_length=9_000,
            burst_length=500,
        )
        assert quiet.length == 9_000 and burst.length == 500
        assert burst.overrides["hot_data_kb"] > quiet.overrides["hot_data_kb"]
