"""Tests for the instruction-set abstractions."""

import pytest

from repro.isa import (
    EXECUTION_LATENCY,
    Instruction,
    NUM_FP_REGS,
    NUM_INT_REGS,
    OpClass,
    fp_reg,
    int_reg,
    is_floating_point,
    is_fp_register,
    is_int_register,
    is_integer,
    is_memory,
    register_index,
    uses_fp_queue,
    uses_int_queue,
)
from repro.isa.registers import TOTAL_LOGICAL_REGS


class TestRegisters:
    def test_int_reg_names(self):
        assert int_reg(0) == "r0"
        assert int_reg(31) == "r31"

    def test_fp_reg_names(self):
        assert fp_reg(0) == "f0"
        assert fp_reg(31) == "f31"

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            fp_reg(NUM_FP_REGS)

    def test_register_classification(self):
        assert is_int_register("r5")
        assert not is_fp_register("r5")
        assert is_fp_register("f5")
        assert not is_int_register("f5")

    def test_register_index_dense_and_disjoint(self):
        int_indices = {register_index(int_reg(i)) for i in range(NUM_INT_REGS)}
        fp_indices = {register_index(fp_reg(i)) for i in range(NUM_FP_REGS)}
        assert int_indices == set(range(NUM_INT_REGS))
        assert fp_indices == set(range(NUM_INT_REGS, TOTAL_LOGICAL_REGS))
        assert not int_indices & fp_indices

    def test_register_index_rejects_malformed_names(self):
        for bad in ("x3", "r", "r99", "f-1", ""):
            with pytest.raises(ValueError):
                register_index(bad)


class TestOpClasses:
    def test_every_class_has_a_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1

    def test_memory_classification(self):
        assert is_memory(OpClass.LOAD)
        assert is_memory(OpClass.STORE)
        assert not is_memory(OpClass.INT_ALU)

    def test_integer_and_fp_are_disjoint(self):
        for op in OpClass:
            assert not (is_integer(op) and is_floating_point(op))

    def test_queue_routing_covers_everything(self):
        for op in OpClass:
            assert uses_int_queue(op) != uses_fp_queue(op)

    def test_memory_ops_use_integer_queue(self):
        assert uses_int_queue(OpClass.LOAD)
        assert uses_int_queue(OpClass.STORE)

    def test_complex_ops_slower_than_alu(self):
        assert EXECUTION_LATENCY[OpClass.INT_MULT] > EXECUTION_LATENCY[OpClass.INT_ALU]
        assert EXECUTION_LATENCY[OpClass.FP_DIV] > EXECUTION_LATENCY[OpClass.FP_ALU]


class TestInstruction:
    def test_memory_instruction_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.LOAD, dest="r4")

    def test_branch_gets_default_target(self):
        branch = Instruction(pc=0x1000, op=OpClass.BRANCH, taken=False)
        assert branch.is_branch
        assert branch.target == 0x1004

    def test_next_pc_taken_branch(self):
        branch = Instruction(
            pc=0x1000, op=OpClass.BRANCH, taken=True, target=0x2000
        )
        assert branch.next_pc == 0x2000

    def test_next_pc_not_taken_branch(self):
        branch = Instruction(
            pc=0x1000, op=OpClass.BRANCH, taken=False, target=0x2000
        )
        assert branch.next_pc == 0x1004

    def test_next_pc_sequential(self):
        inst = Instruction(pc=0x1000, op=OpClass.INT_ALU, dest="r1")
        assert inst.next_pc == 0x1004

    def test_load_store_properties(self):
        load = Instruction(pc=0, op=OpClass.LOAD, dest="r1", address=64)
        store = Instruction(pc=4, op=OpClass.STORE, sources=("r1",), address=64)
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load
        assert load.is_memory_op and store.is_memory_op

    def test_describe_mentions_key_fields(self):
        inst = Instruction(pc=0x40, op=OpClass.LOAD, dest="r7", address=0x1234)
        text = inst.describe()
        assert "load" in text
        assert "r7" in text
