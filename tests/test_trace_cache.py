"""Tests for the per-process trace memoisation layer."""

from __future__ import annotations

import warnings

import pytest

from repro.workloads import get_workload
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.trace_cache import (
    DEFAULT_CACHE_TRACES,
    ReplayableTrace,
    _cache_limit,
    _reset_limit_warning,
    cached_trace,
    clear_trace_cache,
)


class TestReplayableTrace:
    def test_replay_matches_fresh_generation(self):
        profile = get_workload("gcc")
        fresh = SyntheticTraceGenerator(profile, seed=1234).generate(3_000)
        replayed = ReplayableTrace(profile, seed=1234).generate(3_000)
        assert replayed == fresh
        assert [inst.seq for inst in replayed] == [inst.seq for inst in fresh]

    def test_second_consumer_replays_the_same_objects(self):
        trace = ReplayableTrace(get_workload("gcc"), seed=7)
        first_iter = trace.instructions()
        first = [next(first_iter) for _ in range(500)]
        second_iter = trace.instructions()
        second = [next(second_iter) for _ in range(500)]
        assert all(a is b for a, b in zip(first, second))
        assert trace.materialised_length == 500

    def test_generate_is_stateful_like_the_generator(self):
        profile = get_workload("gcc")
        generator = SyntheticTraceGenerator(profile, seed=9)
        trace = ReplayableTrace(profile, seed=9)
        assert trace.generate(300) == generator.generate(300)
        # The second call continues the stream, exactly as the generator does.
        assert trace.generate(300) == generator.generate(300)

    def test_interleaved_consumers_stay_consistent(self):
        trace = ReplayableTrace(get_workload("em3d"), seed=5)
        ahead = trace.instructions()
        behind = trace.instructions()
        lead = [next(ahead) for _ in range(200)]
        follow = [next(behind) for _ in range(200)]
        assert all(a is b for a, b in zip(lead, follow))

    def test_extends_on_demand(self):
        trace = ReplayableTrace(get_workload("gcc"), seed=2)
        trace.generate(100)
        trace.generate(250)
        assert trace.materialised_length == 350


class TestCachedTrace:
    def setup_method(self):
        clear_trace_cache()

    def teardown_method(self):
        clear_trace_cache()

    def test_same_profile_and_seed_share_a_trace(self):
        profile = get_workload("gcc")
        assert cached_trace(profile, seed=1) is cached_trace(profile, seed=1)

    def test_different_seeds_get_distinct_traces(self):
        profile = get_workload("gcc")
        assert cached_trace(profile, seed=1) is not cached_trace(profile, seed=2)

    def test_different_profiles_get_distinct_traces(self):
        assert cached_trace(get_workload("gcc"), seed=1) is not cached_trace(
            get_workload("em3d"), seed=1
        )

    def test_description_edits_share_one_cached_stream(self):
        # Doc-only fields must not key the cache: a profile whose description
        # was edited replays the exact same cached trace object.
        profile = get_workload("gcc")
        edited = profile.with_overrides(description="reworded documentation")
        assert cached_trace(profile, seed=1) is cached_trace(edited, seed=1)

    def test_paper_provenance_edits_share_one_cached_stream(self):
        profile = get_workload("gcc")
        edited = profile.with_overrides(
            paper_dataset="retyped input", paper_window="retyped window"
        )
        assert cached_trace(profile, seed=1) is cached_trace(edited, seed=1)

    def test_generation_parameter_edits_still_miss(self):
        # The key must stay sensitive to everything that shapes the stream.
        profile = get_workload("gcc")
        edited = profile.with_overrides(load_fraction=profile.load_fraction + 0.01)
        assert cached_trace(profile, seed=1) is not cached_trace(edited, seed=1)

    def test_disabled_via_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        profile = get_workload("gcc")
        assert cached_trace(profile, seed=1) is not cached_trace(profile, seed=1)

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        gcc = get_workload("gcc")
        first = cached_trace(gcc, seed=1)
        cached_trace(gcc, seed=2)
        cached_trace(gcc, seed=3)  # evicts seed=1
        assert cached_trace(gcc, seed=1) is not first


class TestCacheLimitParsing:
    def setup_method(self):
        clear_trace_cache()
        _reset_limit_warning()

    def teardown_method(self):
        clear_trace_cache()
        _reset_limit_warning()

    def test_default_without_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert _cache_limit() == DEFAULT_CACHE_TRACES

    def test_negative_values_clamp_to_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "-3")
        assert _cache_limit() == 0
        # Clamped-to-zero behaves exactly like an explicit 0: no memoisation.
        profile = get_workload("gcc")
        assert cached_trace(profile, seed=1) is not cached_trace(profile, seed=1)

    def test_unparsable_value_warns_once_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_TRACE_CACHE"):
            assert _cache_limit() == DEFAULT_CACHE_TRACES
        # The warning is one-time per process.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert _cache_limit() == DEFAULT_CACHE_TRACES
        assert not caught

    def test_valid_values_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "7")
        assert _cache_limit() == 7
