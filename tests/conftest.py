"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadProfile


@pytest.fixture
def tiny_profile() -> WorkloadProfile:
    """A small, fast-to-simulate workload used by integration tests."""
    return WorkloadProfile(
        name="tiny-test",
        suite="test",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=32.0,
        hot_data_kb=8.0,
        simulation_window=2_000,
    )


@pytest.fixture
def memory_bound_profile() -> WorkloadProfile:
    """A memory-bound workload whose working set exceeds the minimal caches."""
    return WorkloadProfile(
        name="membound-test",
        suite="test",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=768.0,
        hot_data_kb=384.0,
        hot_data_fraction=0.85,
        sequential_fraction=0.35,
        mean_dependence_distance=12.0,
        simulation_window=2_000,
    )
