"""Tests for the distributed campaign fabric: shard, merge, resume, async."""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.core.configuration import AdaptiveConfigIndices
from repro.engine import (
    CacheMergeError,
    CacheVersionError,
    ExperimentEngine,
    FINGERPRINT_VERSION,
    ResultCache,
    SerialExecutor,
    SimulationJob,
    SpecKind,
    parse_shard,
    run_job,
    run_shard,
    select_shard,
    shard_index,
    shard_jobs,
)
from repro.engine.fabric import ShardSpec
from repro.workloads import WorkloadProfile


@pytest.fixture(scope="module")
def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="fabric-quick",
        suite="test",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=48.0,
        hot_data_kb=12.0,
        simulation_window=1_000,
    )


def _jobs(profile: WorkloadProfile) -> list[SimulationJob]:
    common = dict(profile=profile, window=700, warmup=1200)
    return [
        SimulationJob(spec_kind=SpecKind.BEST_SYNCHRONOUS, **common),
        SimulationJob(
            spec_kind=SpecKind.ADAPTIVE, indices=AdaptiveConfigIndices(1, 0, 16, 16), **common
        ),
        SimulationJob(
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            **common,
        ),
        SimulationJob(
            spec_kind=SpecKind.SYNCHRONOUS, indices=AdaptiveConfigIndices(2, 1, 32, 16), **common
        ),
    ]


def _store_bytes(directory: Path) -> dict[str, bytes]:
    return {path.name: path.read_bytes() for path in sorted(directory.glob("*.json"))}


def _engine(cache_dir: Path, **kwargs) -> ExperimentEngine:
    return ExperimentEngine(SerialExecutor(), ResultCache(cache_dir), **kwargs)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/2") == ShardSpec(0, 2)
        assert parse_shard(" 3/8 ") == ShardSpec(3, 8)
        assert parse_shard("0/1").describe() == "0/1"

    @pytest.mark.parametrize("text", ["", "2", "2/", "/2", "2/2", "3/2", "-1/2", "a/b"])
    def test_parse_shard_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_shard_spec_validates(self):
        with pytest.raises(ValueError):
            ShardSpec(0, 0)
        with pytest.raises(ValueError):
            ShardSpec(2, 2)
        assert ShardSpec(0, 1).describe() == "0/1"

    def test_shard_index_is_stable_and_in_range(self, profile):
        for job in _jobs(profile):
            fingerprint = job.fingerprint()
            for count in (1, 2, 3, 7):
                index = shard_index(fingerprint, count)
                assert 0 <= index < count
                assert index == shard_index(fingerprint, count)

    def test_shard_jobs_partitions_the_deduplicated_list(self, profile):
        jobs = _jobs(profile)
        duplicated = jobs + [jobs[0], jobs[2]]
        shards = shard_jobs(duplicated, 3)
        assert len(shards) == 3
        fingerprints = [[job.fingerprint() for job in shard] for shard in shards]
        flat = [fp for shard in fingerprints for fp in shard]
        assert len(flat) == len(set(flat)) == len(jobs)
        assert set(flat) == {job.fingerprint() for job in jobs}
        # every worker derives the identical partition
        again = shard_jobs(duplicated, 3)
        assert [[j.fingerprint() for j in s] for s in again] == fingerprints

    def test_select_shard_matches_partition(self, profile):
        jobs = _jobs(profile)
        for index in range(2):
            selected = select_shard(jobs, ShardSpec(index, 2))
            assert selected == shard_jobs(jobs, 2)[index]


class TestShardMergeEqualsSerial:
    def test_sharded_then_merged_store_is_byte_identical_to_serial(self, profile, tmp_path):
        jobs = _jobs(profile)

        reports = []
        for index in range(2):
            engine = _engine(tmp_path / f"shard{index}")
            reports.append(run_shard(jobs, ShardSpec(index, 2), engine))
        assert sum(report.jobs_in_shard for report in reports) == len(jobs)
        assert all(report.simulations == report.jobs_in_shard for report in reports)
        assert all(report.jobs_planned == len(jobs) for report in reports)

        merged = ResultCache(tmp_path / "merged")
        total = 0
        for index in range(2):
            report = merged.merge(tmp_path / f"shard{index}")
            total += report.merged
            assert report.duplicates == 0
        assert total == len(jobs)

        serial_engine = _engine(tmp_path / "serial")
        serial_engine.run_all(jobs)

        assert _store_bytes(tmp_path / "merged") == _store_bytes(tmp_path / "serial")

    def test_rerunning_a_shard_is_pure_cache_hits(self, profile, tmp_path):
        jobs = _jobs(profile)
        shard = ShardSpec(0, 2)
        first = run_shard(jobs, shard, _engine(tmp_path / "w"))
        second = run_shard(jobs, shard, _engine(tmp_path / "w"))
        assert first.simulations == first.jobs_in_shard > 0
        assert second.simulations == 0
        assert second.cache_hits == second.jobs_in_shard == first.jobs_in_shard


class TestMergeValidation:
    def _seed_store(self, profile, directory: Path) -> str:
        """One committed entry; returns its fingerprint."""
        engine = _engine(directory)
        job = _jobs(profile)[0]
        engine.run(job)
        return job.fingerprint()

    def test_merge_is_idempotent(self, profile, tmp_path):
        self._seed_store(profile, tmp_path / "src")
        destination = ResultCache(tmp_path / "dst")
        assert destination.merge(tmp_path / "src").merged == 1
        report = destination.merge(tmp_path / "src")
        assert (report.merged, report.duplicates) == (0, 1)

    def test_merge_rejects_version_mismatch_naming_both_versions(self, profile, tmp_path):
        fingerprint = self._seed_store(profile, tmp_path / "src")
        path = tmp_path / "src" / f"{fingerprint}.json"
        data = json.loads(path.read_text())
        data["version"] = FINGERPRINT_VERSION - 1
        path.write_text(json.dumps(data))

        destination = ResultCache(tmp_path / "dst")
        with pytest.raises(CacheVersionError) as excinfo:
            destination.merge(tmp_path / "src")
        message = str(excinfo.value)
        assert f"FINGERPRINT_VERSION {FINGERPRINT_VERSION - 1}" in message
        assert f"FINGERPRINT_VERSION {FINGERPRINT_VERSION}" in message
        # nothing was copied: validation precedes the first write
        assert destination.disk_fingerprints() == []

    def test_load_rejects_version_mismatch(self, profile, tmp_path):
        fingerprint = self._seed_store(profile, tmp_path / "src")
        path = tmp_path / "src" / f"{fingerprint}.json"
        data = json.loads(path.read_text())
        data["version"] = FINGERPRINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(CacheVersionError):
            ResultCache(tmp_path / "src").get(fingerprint)

    def test_merge_rejects_conflicting_duplicate(self, profile, tmp_path):
        fingerprint = self._seed_store(profile, tmp_path / "a")
        self._seed_store(profile, tmp_path / "b")
        path = tmp_path / "b" / f"{fingerprint}.json"
        data = json.loads(path.read_text())
        data["result"]["committed_instructions"] += 1
        path.write_text(json.dumps(data))

        destination = ResultCache(tmp_path / "dst")
        destination.merge(tmp_path / "a")
        with pytest.raises(CacheMergeError, match="merge conflict"):
            destination.merge(tmp_path / "b")

    def test_merge_rejects_fingerprint_filename_mismatch(self, profile, tmp_path):
        fingerprint = self._seed_store(profile, tmp_path / "src")
        path = tmp_path / "src" / f"{fingerprint}.json"
        path.rename(tmp_path / "src" / f"{'0' * 64}.json")
        with pytest.raises(CacheMergeError, match="does not match its"):
            ResultCache(tmp_path / "dst").merge(tmp_path / "src")

    def test_merge_guards_memory_only_and_bad_sources(self, profile, tmp_path):
        with pytest.raises(ValueError):
            ResultCache().merge(tmp_path)  # memory-only destination
        destination = ResultCache(tmp_path / "dst")
        with pytest.raises(FileNotFoundError):
            destination.merge(tmp_path / "missing")
        with pytest.raises(ValueError):
            destination.merge(tmp_path / "dst")


class TestResumeSemantics:
    def test_killed_batch_keeps_completed_prefix_and_resumes(self, profile, tmp_path):
        jobs = _jobs(profile)
        budget = 2

        simulated = 0

        def budgeted_runner(job):
            nonlocal simulated
            if simulated >= budget:
                raise RuntimeError("worker killed (job budget exhausted)")
            simulated += 1
            return run_job(job)

        interrupted = _engine(tmp_path / "store", runner=budgeted_runner)
        with pytest.raises(RuntimeError, match="worker killed"):
            interrupted.run_all(jobs)
        # the completed prefix was committed incrementally
        survivors = ResultCache(tmp_path / "store").disk_fingerprints()
        assert len(survivors) == budget

        resumed = _engine(tmp_path / "store")
        resumed.run_all(jobs)
        assert resumed.stats.cache_hits == budget
        assert resumed.stats.simulations == len(jobs) - budget

        uninterrupted = _engine(tmp_path / "reference")
        uninterrupted.run_all(jobs)
        assert _store_bytes(tmp_path / "store") == _store_bytes(tmp_path / "reference")

        warm = _engine(tmp_path / "store")
        warm.run_all(jobs)
        assert warm.stats.simulations == 0
        assert warm.stats.cache_hits == len(jobs)


class TestAsyncServing:
    def test_submit_poll_result_roundtrip(self, profile, tmp_path):
        engine = _engine(tmp_path / "store")
        job = _jobs(profile)[0]
        try:
            handle = engine.submit(job)
            assert handle.source == "simulated"
            result = engine.result(handle, timeout=60)
            assert engine.poll(handle)
            assert result.committed_instructions > 0
            # a fresh submission of the same fingerprint is a cache hit
            again = engine.submit(job)
            assert again.source == "cache"
            assert engine.result(again, timeout=60) == result
            assert engine.stats.simulations == 1
        finally:
            engine.close()

    def test_inflight_duplicate_shares_one_simulation(self, profile, tmp_path):
        release = threading.Event()

        def gated_runner(job):
            release.wait(timeout=60)
            return run_job(job)

        engine = _engine(tmp_path / "store", runner=gated_runner)
        job = _jobs(profile)[1]
        try:
            first = engine.submit(job)
            second = engine.submit(job)
            assert first.source == "simulated"
            assert second.source == "duplicate"
            assert not engine.poll(first)
            release.set()
            assert engine.result(first, timeout=60) == engine.result(second, timeout=60)
            assert engine.stats.simulations == 1
            assert engine.stats.batch_duplicates == 1
        finally:
            release.set()
            engine.close()

    def test_two_concurrent_clients_never_duplicate_a_simulation(self, profile, tmp_path):
        engine = _engine(tmp_path / "store")
        job = _jobs(profile)[2]
        barrier = threading.Barrier(2)
        results = []

        def client():
            barrier.wait(timeout=60)
            handle = engine.submit(job)
            results.append(engine.result(handle, timeout=120))

        try:
            threads = [threading.Thread(target=client) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert len(results) == 2
            assert results[0] == results[1]
            assert engine.stats.simulations == 1
        finally:
            engine.close()

    def test_failed_submission_surfaces_through_the_handle(self, profile, tmp_path):
        def failing_runner(job):
            raise RuntimeError("boom")

        engine = _engine(tmp_path / "store", runner=failing_runner)
        job = _jobs(profile)[3]
        try:
            handle = engine.submit(job)
            assert isinstance(handle.exception(timeout=60), RuntimeError)
            with pytest.raises(RuntimeError, match="boom"):
                engine.result(handle, timeout=60)
            # the failure was not cached; the engine stays usable
            assert ResultCache(tmp_path / "store").disk_fingerprints() == []
        finally:
            engine.close()


class TestCanonicalisation:
    def test_process_dependent_counters_are_reset_on_put(self, profile, tmp_path):
        job = _jobs(profile)[0]
        fingerprint = job.fingerprint()
        result = run_job(job)
        result.compiled_trace_cache_hits = 7

        cache = ResultCache(tmp_path / "store")
        cache.put(fingerprint, result)

        on_disk = json.loads((tmp_path / "store" / f"{fingerprint}.json").read_text())
        assert on_disk["result"]["compiled_trace_cache_hits"] == 0
        assert cache.get(fingerprint).compiled_trace_cache_hits == 0
        # the caller's object is untouched
        assert result.compiled_trace_cache_hits == 7
