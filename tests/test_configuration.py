"""Tests for machine specifications and the configuration spaces."""

import pytest

from repro.core import (
    AdaptiveConfigIndices,
    ArchitecturalParameters,
    MachineStyle,
    adaptive_mcd_spec,
    base_adaptive_spec,
    best_overall_synchronous_spec,
    synchronous_spec,
)
from repro.core.configuration import (
    adaptive_configuration_space,
    synchronous_configuration_space,
)
from repro.core.domains import Domain
from repro.timing.tables import ISSUE_QUEUE_FREQUENCY_GHZ


class TestArchitecturalParameters:
    def test_defaults_match_table5(self):
        params = ArchitecturalParameters()
        assert params.fetch_queue_entries == 16
        assert params.decode_width == 8
        assert params.issue_width == 6
        assert params.retire_width == 11
        assert params.reorder_buffer_entries == 256
        assert params.load_store_queue_entries == 64
        assert params.physical_int_registers == 96
        assert params.physical_fp_registers == 96
        assert params.int_alus == 4
        assert params.fp_alus == 4
        assert params.memory_first_chunk_ns == 80.0
        assert params.mispredict_front_end_cycles_synchronous == 9
        assert params.mispredict_integer_cycles_synchronous == 7
        assert params.mispredict_front_end_cycles_adaptive == 10
        assert params.mispredict_integer_cycles_adaptive == 9


class TestConfigIndices:
    def test_valid_queue_sizes_only(self):
        with pytest.raises(ValueError):
            AdaptiveConfigIndices(int_queue_size=24)
        with pytest.raises(ValueError):
            AdaptiveConfigIndices(fp_queue_size=128)

    def test_describe_roundtrip_format(self):
        indices = AdaptiveConfigIndices(1, 2, 32, 48)
        assert indices.describe() == "ic1/dc2/iq32/fq48"

    def test_adaptive_space_has_256_points(self):
        assert len(list(adaptive_configuration_space())) == 256

    def test_synchronous_space_has_1024_points(self):
        assert len(list(synchronous_configuration_space())) == 1024


class TestAdaptiveSpec:
    def test_base_spec_is_smallest_and_fastest(self):
        spec = base_adaptive_spec()
        assert spec.style is MachineStyle.ADAPTIVE_MCD
        assert spec.icache.name == "16k1W"
        assert spec.dcache.name == "32k1W/256k1W"
        assert spec.int_queue_size == 16
        assert spec.use_b_partitions

    def test_domain_frequencies_follow_structures(self):
        spec = adaptive_mcd_spec(AdaptiveConfigIndices(2, 1, 32, 64))
        assert spec.frequency(Domain.FRONT_END) == spec.icache.frequency_ghz
        assert spec.frequency(Domain.LOAD_STORE) == spec.dcache.frequency_ghz
        assert spec.frequency(Domain.INTEGER) == ISSUE_QUEUE_FREQUENCY_GHZ[32]
        assert spec.frequency(Domain.FLOATING_POINT) == ISSUE_QUEUE_FREQUENCY_GHZ[64]

    def test_adaptive_penalties_are_higher(self):
        adaptive = adaptive_mcd_spec()
        synchronous = best_overall_synchronous_spec()
        assert adaptive.mispredict_front_end_cycles == synchronous.mispredict_front_end_cycles + 1
        assert adaptive.mispredict_integer_cycles == synchronous.mispredict_integer_cycles + 2

    def test_program_adaptive_disables_b_partitions(self):
        spec = adaptive_mcd_spec(AdaptiveConfigIndices(), use_b_partitions=False)
        assert not spec.use_b_partitions
        assert spec.inter_domain_sync

    def test_describe_mentions_structures(self):
        text = base_adaptive_spec().describe()
        assert "16k1W" in text and "IQ16" in text


class TestSynchronousSpec:
    def test_single_global_frequency(self):
        spec = synchronous_spec(AdaptiveConfigIndices(0, 0, 16, 16))
        frequencies = set(spec.frequencies_ghz.values())
        assert len(frequencies) == 1

    def test_global_frequency_is_slowest_structure(self):
        spec = synchronous_spec(AdaptiveConfigIndices(4, 0, 16, 16))  # 64k1W icache
        assert spec.frequency(Domain.FRONT_END) == pytest.approx(
            min(spec.icache.frequency_ghz, spec.dcache.frequency_ghz,
                ISSUE_QUEUE_FREQUENCY_GHZ[16])
        )

    def test_no_sync_costs_and_no_b_partitions(self):
        spec = best_overall_synchronous_spec()
        assert not spec.inter_domain_sync
        assert not spec.use_b_partitions

    def test_best_overall_matches_paper_section4(self):
        spec = best_overall_synchronous_spec()
        assert spec.icache.name == "64k1W"
        assert spec.dcache.name == "32k1W/256k1W"
        assert spec.int_queue_size == 16
        assert spec.fp_queue_size == 16

    def test_larger_issue_queue_lowers_global_clock(self):
        small = synchronous_spec(AdaptiveConfigIndices(0, 0, 16, 16))
        large = synchronous_spec(AdaptiveConfigIndices(0, 0, 64, 16))
        assert large.frequency(Domain.INTEGER) < small.frequency(Domain.INTEGER)
