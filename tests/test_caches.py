"""Tests for the MRU cache substrate and the Accounting Cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches import (
    AccessOutcome,
    AccountingCache,
    CacheIntervalStats,
    MRUSet,
    SetAssociativeCache,
)
from repro.timing.cacti import CacheGeometry


class TestMRUSet:
    def test_miss_then_hit(self):
        mru = MRUSet(ways=4)
        assert mru.access(10) == -1
        assert mru.access(10) == 0

    def test_mru_ordering(self):
        mru = MRUSet(ways=4)
        for tag in (1, 2, 3):
            mru.access(tag)
        assert mru.tags_in_mru_order() == (3, 2, 1)
        assert mru.access(1) == 2
        assert mru.tags_in_mru_order() == (1, 3, 2)

    def test_eviction_is_lru(self):
        mru = MRUSet(ways=2)
        mru.access(1)
        mru.access(2)
        mru.access(3)  # evicts 1
        assert mru.probe(1) == -1
        assert mru.probe(2) == 1
        assert mru.probe(3) == 0

    def test_probe_does_not_touch_recency(self):
        mru = MRUSet(ways=4)
        mru.access(1)
        mru.access(2)
        assert mru.probe(1) == 1
        assert mru.tags_in_mru_order() == (2, 1)

    def test_invalidate(self):
        mru = MRUSet(ways=4)
        mru.access(7)
        assert mru.invalidate(7)
        assert not mru.invalidate(7)
        assert mru.probe(7) == -1

    def test_flush(self):
        mru = MRUSet(ways=4)
        for tag in range(4):
            mru.access(tag)
        mru.flush()
        assert mru.occupancy == 0

    def test_requires_at_least_one_way(self):
        with pytest.raises(ValueError):
            MRUSet(ways=0)

    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_stack_property(self, tags):
        """The LRU stack property: a hit in a small cache implies a hit in any
        larger cache for the same access sequence."""
        small = MRUSet(ways=2)
        large = MRUSet(ways=6)
        for tag in tags:
            pos_small = small.access(tag)
            pos_large = large.access(tag)
            if pos_small >= 0:
                assert 0 <= pos_large <= pos_small


class TestSetAssociativeCache:
    def geometry(self, size_kb=32, assoc=4):
        return CacheGeometry(size_kb=size_kb, associativity=assoc, sub_banks=32)

    def test_block_and_set_mapping(self):
        cache = SetAssociativeCache(self.geometry())
        assert cache.block_address(0x1234) == 0x1200
        assert cache.set_index(0x1240) != cache.set_index(0x1240 + 64 * cache.num_sets + 64)

    def test_lookup_miss_then_hit(self):
        cache = SetAssociativeCache(self.geometry())
        assert cache.lookup(0x4000) == -1
        assert cache.lookup(0x4000) == 0
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_block_different_words_hit(self):
        cache = SetAssociativeCache(self.geometry())
        cache.lookup(0x4000)
        assert cache.lookup(0x4038) == 0

    def test_contains_and_invalidate(self):
        cache = SetAssociativeCache(self.geometry())
        cache.lookup(0x8000)
        assert cache.contains(0x8000)
        assert cache.invalidate(0x8000)
        assert not cache.contains(0x8000)

    def test_flush_empties_cache(self):
        cache = SetAssociativeCache(self.geometry())
        for index in range(100):
            cache.lookup(index * 64)
        cache.flush()
        assert cache.resident_blocks() == 0

    def test_conflict_evictions_in_direct_mapped(self):
        cache = SetAssociativeCache(self.geometry(assoc=1))
        stride = cache.num_sets * 64
        cache.lookup(0)
        cache.lookup(stride)  # maps to the same set, evicts block 0
        assert cache.lookup(0) == -1

    def test_miss_rate(self):
        cache = SetAssociativeCache(self.geometry())
        assert cache.stats.miss_rate == 0.0
        cache.lookup(0)
        assert cache.stats.miss_rate == 1.0


class TestAccountingCache:
    def geometry(self):
        return CacheGeometry(size_kb=256, associativity=8, sub_banks=32)

    def test_a_partition_hit(self):
        cache = AccountingCache(self.geometry(), a_ways=2)
        cache.access(0x1000)
        assert cache.access(0x1000) is AccessOutcome.HIT_A

    def test_b_partition_hit(self):
        cache = AccountingCache(self.geometry(), a_ways=1, b_enabled=True)
        sets = cache.num_sets
        # Two blocks in the same set: the second access pushes the first to
        # MRU position 1, which is in the B partition when a_ways == 1.
        cache.access(0x1000)
        cache.access(0x1000 + sets * 64)
        assert cache.access(0x1000) is AccessOutcome.HIT_B

    def test_b_disabled_turns_b_hits_into_misses(self):
        cache = AccountingCache(self.geometry(), a_ways=1, b_enabled=False)
        sets = cache.num_sets
        cache.access(0x1000)
        cache.access(0x1000 + sets * 64)
        assert cache.access(0x1000) is AccessOutcome.MISS

    def test_interval_counters_reconstruct_all_configs(self):
        cache = AccountingCache(self.geometry(), a_ways=1)
        sets = cache.num_sets
        addresses = [0x1000 + i * sets * 64 for i in range(4)]
        for address in addresses:
            cache.access(address)
        # Re-touch them most-recently-used-last.
        for address in addresses:
            cache.access(address)
        stats = cache.interval_stats
        # With 4 distinct blocks in one set re-touched in order, the second
        # pass hits at MRU position 3 each time.
        a_hits, b_hits, misses = stats.what_if(4, b_enabled=True)
        assert a_hits == 4
        assert misses == 4
        a_hits1, b_hits1, misses1 = stats.what_if(1, b_enabled=True)
        assert a_hits1 == 0
        assert b_hits1 == 4

    def test_what_if_without_b_moves_hits_to_misses(self):
        stats = CacheIntervalStats(ways=4)
        stats.record(0)
        stats.record(2)
        stats.record(-1)
        assert stats.what_if(1, b_enabled=True) == (1, 1, 1)
        assert stats.what_if(1, b_enabled=False) == (1, 0, 2)

    def test_interval_reset(self):
        cache = AccountingCache(self.geometry(), a_ways=1)
        cache.access(0x1000)
        cache.reset_interval()
        assert cache.interval_stats.accesses == 0
        assert sum(cache.interval_stats.hits_by_mru_position) == 0

    def test_snapshot_is_independent_copy(self):
        cache = AccountingCache(self.geometry(), a_ways=1)
        cache.access(0x1000)
        snapshot = cache.snapshot_interval()
        cache.access(0x2000)
        assert snapshot.accesses == 1
        assert cache.interval_stats.accesses == 2

    def test_set_a_ways_bounds(self):
        cache = AccountingCache(self.geometry(), a_ways=1)
        with pytest.raises(ValueError):
            cache.set_a_ways(0)
        with pytest.raises(ValueError):
            cache.set_a_ways(9)
        cache.set_a_ways(8)
        assert cache.a_ways == 8
        assert cache.b_ways == 0

    def test_repartitioning_preserves_contents(self):
        cache = AccountingCache(self.geometry(), a_ways=1)
        cache.access(0x1000)
        cache.set_a_ways(4)
        assert cache.access(0x1000) is AccessOutcome.HIT_A

    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=5, max_size=300),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40)
    def test_what_if_matches_direct_simulation(self, block_ids, a_ways):
        """The counter-based reconstruction must match simulating that
        configuration directly (the core Accounting Cache property)."""
        geometry = CacheGeometry(size_kb=256, associativity=8, sub_banks=32)
        accounting = AccountingCache(geometry, a_ways=1, b_enabled=True)
        direct = AccountingCache(geometry, a_ways=a_ways, b_enabled=True)
        sets = accounting.num_sets
        addresses = [0x1000 + (b % 3) * 64 + (b // 3) * sets * 64 for b in block_ids]
        direct_a = direct_b = direct_miss = 0
        for address in addresses:
            accounting.access(address)
            outcome = direct.access(address)
            if outcome is AccessOutcome.HIT_A:
                direct_a += 1
            elif outcome is AccessOutcome.HIT_B:
                direct_b += 1
            else:
                direct_miss += 1
        a_hits, b_hits, misses = accounting.interval_stats.what_if(
            a_ways, b_enabled=True
        )
        assert (a_hits, b_hits, misses) == (direct_a, direct_b, direct_miss)
