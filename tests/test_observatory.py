"""Tests for the campaign observatory: run ledger, aggregation, exporters.

The load-bearing properties first: the ledger is observation-only (the ten
golden digests are bit-identical with a ledger attached), and the fleet is
equivalent to the single process (a merged N-shard ledger summarizes to
the same partition-independent equivalence key as one process running the
whole job list).  The rest covers the JSONL schema validation (foreign,
stale and truncated files reject loudly), ``merge_ledgers``'
validate-before-write contract, the metrics ``from_dict``/``merge``
round-trips, the Prometheus/JSON exporters, the campaign report renderer,
the ``bench history`` trajectory analysis and the CLI surfaces.
"""

from __future__ import annotations

import json

import pytest

from golden_digests import golden_jobs, result_digest
from repro.bench.environment import EnvironmentFingerprint
from repro.bench.history import load_trajectories, render_history
from repro.bench.schema import BenchEntry, BenchRun
from repro.engine import ExperimentEngine, run_job
from repro.engine.cache import ResultCache
from repro.engine.cli import inspect_store
from repro.engine.fabric import ShardSpec, run_shard
from repro.obs.cli import main as obs_main
from repro.obs.export import (
    prometheus_text,
    write_json_snapshot,
    write_metrics_snapshot,
    write_prometheus_snapshot,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    LedgerWriter,
    ledger_files,
    merge_ledgers,
    open_ledger,
    read_ledger,
    summarize_ledgers,
)
from repro.obs.metrics import EngineMetrics, Histogram
from repro.obs.report import render_histogram, render_report
from test_golden_values import GOLDEN_DIGESTS


def _sample_metrics(values=(0.002, 0.05, 0.4, 2.0)) -> EngineMetrics:
    metrics = EngineMetrics()
    for value in values:
        metrics.record_job(value, value * 2)
    metrics.record_batch(sum(values), 2)
    return metrics


# ------------------------------------------------------------ bit-identity


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_golden_digests_bit_identical_with_ledger_attached(name, tmp_path):
    """The ledger is observation-only: digests must not move when it is on."""
    engine = ExperimentEngine()
    engine.ledger = open_ledger(tmp_path, label="golden")
    job = golden_jobs()[name]
    result = engine.run_all([job])[0]
    engine.ledger.close()
    assert result_digest(result) == GOLDEN_DIGESTS[name], (
        f"RunResult for {name} diverged with a run ledger attached; the "
        "ledger must be observation-only"
    )
    # ...and the ledger actually recorded the work.
    _, records = read_ledger(tmp_path / "golden.ledger.jsonl")
    assert [job.fingerprint()] in [record["simulated"] for record in records]


def test_exporters_do_not_perturb_results(tmp_path):
    """Digest parity with the exporter writing snapshots after engine work."""
    job = golden_jobs()["gcc/synchronous"]
    engine = ExperimentEngine()
    result = engine.run_all([job])[0]
    write_metrics_snapshot(tmp_path / "metrics.prom", engine.metrics)
    assert result_digest(result) == GOLDEN_DIGESTS["gcc/synchronous"]
    assert result_digest(run_job(job)) == GOLDEN_DIGESTS["gcc/synchronous"]


# ------------------------------------------------------- metrics round-trip


def test_histogram_round_trips_through_dict():
    histogram = Histogram()
    for value in (0.0005, 0.02, 0.02, 5.0, 500.0):
        histogram.record(value)
    clone = Histogram.from_dict(histogram.to_dict())
    assert clone.to_dict() == histogram.to_dict()


def test_histogram_from_dict_rejects_inconsistent_counts():
    payload = Histogram().to_dict()
    payload["count"] = 3  # buckets still sum to 0
    with pytest.raises(ValueError, match="bucket sum"):
        Histogram.from_dict(payload)


def test_histogram_merge_equals_combined_recording():
    left, right, combined = Histogram(), Histogram(), Histogram()
    for value in (0.002, 0.2, 2.0):
        left.record(value)
        combined.record(value)
    for value in (0.0001, 0.05, 50.0):
        right.record(value)
        combined.record(value)
    left.merge(right)
    assert left.to_dict() == combined.to_dict()


def test_histogram_merge_rejects_different_bounds():
    with pytest.raises(ValueError, match="different bounds"):
        Histogram().merge(Histogram(bounds=(1.0, 2.0)))


def test_engine_metrics_round_trip_and_merge():
    first = _sample_metrics()
    second = _sample_metrics(values=(0.01, 0.3))
    clone = EngineMetrics.from_dict(first.to_dict())
    assert clone.to_dict() == first.to_dict()

    combined = EngineMetrics()
    for values in ((0.002, 0.05, 0.4, 2.0), (0.01, 0.3)):
        for value in values:
            combined.record_job(value, value * 2)
        combined.record_batch(sum(values), 2)
    first.merge(second)
    # Scalar sums are float-associative; compare with approx, counts exactly.
    assert first.jobs_completed == combined.jobs_completed
    assert first.batches == combined.batches
    assert first.busy_seconds == pytest.approx(combined.busy_seconds)
    assert first.capacity_seconds == pytest.approx(combined.capacity_seconds)
    assert first.job_seconds.counts == combined.job_seconds.counts
    assert first.queue_latency.counts == combined.queue_latency.counts
    assert first.job_seconds.total == pytest.approx(combined.job_seconds.total)
    assert 0.0 < first.worker_utilization <= 1.0


# ---------------------------------------------------------- ledger schema


def test_ledger_writer_round_trip(tmp_path):
    path = tmp_path / "run.ledger.jsonl"
    with LedgerWriter(path, meta={"label": "test"}) as writer:
        writer.append({"record": "batch", "jobs": 2, "simulated": ["a", "b"]})
    meta, records = read_ledger(path)
    assert meta["label"] == "test"
    assert records == [{"record": "batch", "jobs": 2, "simulated": ["a", "b"]}]


def test_ledger_writer_is_append_only_across_reopens(tmp_path):
    path = tmp_path / "run.ledger.jsonl"
    with LedgerWriter(path, meta={"label": "first"}) as writer:
        writer.append({"record": "batch", "jobs": 1})
    # A re-started worker continues the same file, keeping the original
    # header and all previous records.
    with LedgerWriter(path, meta={"label": "ignored"}) as writer:
        assert writer.meta["label"] == "first"
        writer.append({"record": "submit", "jobs": 1})
    meta, records = read_ledger(path)
    assert meta["label"] == "first"
    assert [record["record"] for record in records] == ["batch", "submit"]


def test_ledger_writer_rejects_unknown_record_type(tmp_path):
    with LedgerWriter(tmp_path / "run.ledger.jsonl") as writer:
        with pytest.raises(ValueError, match="unknown ledger record type"):
            writer.append({"record": "bogus"})


def test_ledger_writer_refuses_foreign_existing_file(tmp_path):
    path = tmp_path / "foreign.ledger.jsonl"
    path.write_text('{"kind": "something-else", "schema": 1}\n')
    with pytest.raises(LedgerSchemaError):
        LedgerWriter(path)


def test_read_ledger_rejects_foreign_stale_and_truncated(tmp_path):
    empty = tmp_path / "empty.ledger.jsonl"
    empty.write_text("")
    with pytest.raises(LedgerSchemaError, match="empty"):
        read_ledger(empty)

    foreign = tmp_path / "foreign.ledger.jsonl"
    foreign.write_text('{"kind": "repro-obs-trace", "schema": 1}\n')
    with pytest.raises(LedgerSchemaError, match="not a repro-obs-ledger"):
        read_ledger(foreign)

    stale = tmp_path / "stale.ledger.jsonl"
    stale.write_text(
        json.dumps({"kind": "repro-obs-ledger", "schema": LEDGER_SCHEMA_VERSION + 1}) + "\n"
    )
    with pytest.raises(LedgerSchemaError, match="schema"):
        read_ledger(stale)

    torn = tmp_path / "torn.ledger.jsonl"
    torn.write_text(
        json.dumps({"kind": "repro-obs-ledger", "schema": LEDGER_SCHEMA_VERSION, "meta": {}})
        + "\n"
        + '{"record": "batch", "jobs":'
    )
    with pytest.raises(LedgerSchemaError, match="truncated or malformed"):
        read_ledger(torn)

    alien_record = tmp_path / "alien.ledger.jsonl"
    alien_record.write_text(
        json.dumps({"kind": "repro-obs-ledger", "schema": LEDGER_SCHEMA_VERSION, "meta": {}})
        + "\n"
        + '{"record": "mystery"}\n'
    )
    with pytest.raises(LedgerSchemaError, match="unknown ledger record"):
        read_ledger(alien_record)


def test_ledger_files_discovers_directory_sorted(tmp_path):
    for name in ("b", "a"):
        with LedgerWriter(tmp_path / f"{name}.ledger.jsonl"):
            pass
    found = ledger_files(tmp_path)
    assert [path.name for path in found] == ["a.ledger.jsonl", "b.ledger.jsonl"]
    with pytest.raises(FileNotFoundError):
        ledger_files(tmp_path / "missing")


# ----------------------------------------------------------- ledger merge


def test_merge_ledgers_annotates_and_counts(tmp_path):
    for index in range(2):
        with open_ledger(tmp_path / "shards", label="m", shard=f"{index}/2") as writer:
            writer.append({"record": "batch", "jobs": 1, "simulated": [f"fp{index}"]})
    destination = tmp_path / "merged.ledger.jsonl"
    assert merge_ledgers(destination, [tmp_path / "shards"]) == 2
    meta, records = read_ledger(destination)
    assert meta["label"] == "merged"
    assert meta["shards"] == ["0/2", "1/2"]
    assert sorted(record["shard"] for record in records) == ["0/2", "1/2"]
    assert all("source_ledger" in record for record in records)


def test_merge_ledgers_refuses_destination_as_source(tmp_path):
    with open_ledger(tmp_path, label="solo") as writer:
        writer.append({"record": "batch", "jobs": 0})
    destination = tmp_path / "solo.ledger.jsonl"
    with pytest.raises(ValueError, match="destination"):
        merge_ledgers(destination, [destination])


def test_merge_ledgers_refuses_mixed_fingerprint_versions(tmp_path):
    with open_ledger(tmp_path, label="current") as writer:
        writer.append({"record": "batch", "jobs": 0})
    other = tmp_path / "old.ledger.jsonl"
    other.write_text(
        json.dumps(
            {
                "kind": "repro-obs-ledger",
                "schema": LEDGER_SCHEMA_VERSION,
                "meta": {"fingerprint_version": 0},
            }
        )
        + "\n"
    )
    with pytest.raises(LedgerSchemaError, match="FINGERPRINT_VERSION"):
        merge_ledgers(tmp_path / "merged.ledger.jsonl", [tmp_path])


def test_merge_ledgers_validates_all_sources_before_writing(tmp_path):
    with open_ledger(tmp_path / "shards", label="good") as writer:
        writer.append({"record": "batch", "jobs": 1})
    torn = tmp_path / "shards" / "torn.ledger.jsonl"
    torn.write_text(
        json.dumps({"kind": "repro-obs-ledger", "schema": LEDGER_SCHEMA_VERSION, "meta": {}})
        + "\n"
        + '{"record":'
    )
    destination = tmp_path / "merged.ledger.jsonl"
    with pytest.raises(LedgerSchemaError):
        merge_ledgers(destination, [tmp_path / "shards"])
    assert not destination.exists(), "a refused merge must not half-write"


# ------------------------------------------------- engine/fabric integration


def test_engine_ledger_records_batches_and_cache_hits(tmp_path):
    jobs = list(golden_jobs().values())[:2]
    cache = ResultCache(directory=tmp_path / "cache")
    engine = ExperimentEngine(cache=cache)
    engine.ledger = open_ledger(tmp_path, label="warmup")
    engine.run_all(jobs)
    engine.run_all(jobs)  # second pass served from cache
    engine.ledger.close()
    _, records = read_ledger(tmp_path / "warmup.ledger.jsonl")
    assert len(records) == 2
    cold, warm = records
    assert cold["record"] == "batch"
    assert sorted(cold["simulated"]) == sorted(job.fingerprint() for job in jobs)
    assert cold["cached"] == []
    assert warm["simulated"] == []
    assert sorted(warm["cached"]) == sorted(job.fingerprint() for job in jobs)
    for record in records:
        assert record["executor"] == "serial"
        assert record["engine_session"]
        assert record["metrics"]["jobs_completed"] == 2
        assert isinstance(record["t"], float)


def test_engine_submit_appends_ledger_records(tmp_path):
    job = golden_jobs()["gcc/synchronous"]
    engine = ExperimentEngine()
    engine.ledger = open_ledger(tmp_path, label="server")
    engine.submit(job).result()
    engine.ledger.close()
    _, records = read_ledger(tmp_path / "server.ledger.jsonl")
    assert [record["record"] for record in records] == ["submit"]
    assert records[0]["simulated"] == [job.fingerprint()]


def test_shard_report_carries_ledger_path(tmp_path):
    jobs = list(golden_jobs().values())[:3]
    engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / "cache"))
    engine.ledger = open_ledger(tmp_path, label="w", shard="0/1")
    report = run_shard(jobs, ShardSpec(0, 1), engine)
    engine.ledger.close()
    assert report.ledger_path == str(tmp_path / "w-shard-0-of-1.ledger.jsonl")
    assert report.ledger_path in report.describe()
    assert report.to_dict()["ledger_path"] == report.ledger_path

    bare = ExperimentEngine()
    assert run_shard(jobs, ShardSpec(0, 1), bare).ledger_path is None


def test_fleet_equivalence_merged_shards_match_single_process(tmp_path):
    """The tentpole invariant: N-shard ledgers fuse to the one-process view."""
    jobs = list(golden_jobs().values())
    for index in range(2):
        engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / f"cache{index}"))
        engine.ledger = open_ledger(tmp_path / "ledgers", label="fleet", shard=f"{index}/2")
        run_shard(jobs, ShardSpec(index, 2), engine)
        engine.ledger.close()
    merged = tmp_path / "merged.ledger.jsonl"
    merge_ledgers(merged, [tmp_path / "ledgers"])
    fleet = summarize_ledgers([merged])

    single = ExperimentEngine(cache=ResultCache(directory=tmp_path / "cache-single"))
    single.ledger = open_ledger(tmp_path / "single", label="fleet")
    run_shard(jobs, ShardSpec(0, 1), single)
    single.ledger.close()
    solo = summarize_ledgers([tmp_path / "single"])

    assert fleet.equivalence_key() == solo.equivalence_key()
    assert fleet.simulations == len(jobs)
    # Per-shard attribution survived the merge; timing fields are per-host
    # and deliberately not part of the equivalence key.
    assert set(fleet.shards) == {"0/2", "1/2"}
    assert fleet.metrics.jobs_completed == solo.metrics.jobs_completed


def test_summarize_keeps_final_snapshot_per_engine_session(tmp_path):
    """A re-run worker appends with fresh metrics; both sessions must count."""
    jobs = list(golden_jobs().values())[:2]
    for job in jobs:  # two processes, one job each, same ledger file
        engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / "cache"))
        engine.ledger = open_ledger(tmp_path, label="restart")
        engine.run_all([job])
        engine.ledger.close()
    summary = summarize_ledgers([tmp_path / "restart.ledger.jsonl"])
    assert summary.metrics.jobs_completed == 2
    assert summary.simulations == 2


# -------------------------------------------------------------- exporters


def test_prometheus_text_exposes_cumulative_histogram():
    metrics = _sample_metrics()
    text = prometheus_text(metrics, labels={"shard": "0/2"})
    assert 'repro_engine_jobs_completed_total{shard="0/2"} 4' in text
    assert "# TYPE repro_engine_job_seconds histogram" in text
    assert 'repro_engine_job_seconds_bucket{le="+Inf",shard="0/2"} 4' in text
    assert 'repro_engine_job_seconds_count{shard="0/2"} 4' in text
    # Buckets are cumulative and non-decreasing.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_engine_job_seconds_bucket")
    ]
    assert counts == sorted(counts)
    assert counts[-1] == 4


def test_snapshot_writers_dispatch_on_extension(tmp_path):
    metrics = _sample_metrics()
    prom = write_metrics_snapshot(tmp_path / "out.prom", metrics)
    assert prom.read_text().startswith("# HELP repro_engine_jobs_completed_total")
    jsonpath = write_metrics_snapshot(tmp_path / "out.json", metrics, labels={"a": "b"})
    payload = json.loads(jsonpath.read_text())
    assert payload["labels"] == {"a": "b"}
    assert payload["metrics"] == metrics.to_dict()
    assert payload["exported"]
    # Direct writers agree with the dispatcher.
    assert (
        write_prometheus_snapshot(tmp_path / "direct.prom", metrics).read_text()
        == prom.read_text()
    )
    write_json_snapshot(tmp_path / "direct.json", metrics, labels={"a": "b"})


# ----------------------------------------------------------------- report


def _fleet_summary(tmp_path):
    jobs = list(golden_jobs().values())[:4]
    for index in range(2):
        engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / f"cache{index}"))
        engine.ledger = open_ledger(tmp_path / "ledgers", label="r", shard=f"{index}/2")
        run_shard(jobs, ShardSpec(index, 2), engine)
        engine.ledger.close()
    return summarize_ledgers([tmp_path / "ledgers"])


def test_render_report_sections(tmp_path):
    summary = _fleet_summary(tmp_path)
    text = render_report(summary)
    for section in ("Campaign", "Work", "Engine", "Per-shard balance", "Job wall-clock"):
        assert section in text
    assert "0/2" in text and "1/2" in text
    markdown = render_report(summary, markdown=True)
    assert "## Per-shard balance" in markdown
    assert "| shard |" in markdown


def test_render_report_with_store(tmp_path):
    summary = _fleet_summary(tmp_path)
    store = inspect_store(tmp_path / "cache0")
    text = render_report(summary, store=store)
    assert "Result store" in text
    assert str(tmp_path / "cache0") in text


def test_render_histogram_empty():
    assert render_histogram(Histogram()) == ["(no samples)"]


# ------------------------------------------------------------ CLI surfaces


def test_obs_ledger_cli_merge_summarize_report(tmp_path, capsys):
    jobs = list(golden_jobs().values())[:4]
    for index in range(2):
        engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / f"cache{index}"))
        engine.ledger = open_ledger(tmp_path / "ledgers", label="cli", shard=f"{index}/2")
        run_shard(jobs, ShardSpec(index, 2), engine)
        engine.ledger.close()
    merged = tmp_path / "merged.ledger.jsonl"
    assert obs_main(["ledger", "merge", str(merged), str(tmp_path / "ledgers")]) == 0
    assert "merged 2 record(s)" in capsys.readouterr().out

    assert obs_main(["ledger", "summarize", str(merged), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["simulations"] == 4
    assert payload["equivalence_key"]["unique_jobs"] == 4

    report_path = tmp_path / "report.md"
    assert (
        obs_main(
            [
                "report",
                str(merged),
                "--markdown",
                "--store",
                str(tmp_path / "cache0"),
                "--out",
                str(report_path),
            ]
        )
        == 0
    )
    rendered = report_path.read_text()
    assert "## Per-shard balance" in rendered
    assert "## Result store" in rendered


def test_obs_ledger_cli_rejects_foreign_file(tmp_path, capsys):
    foreign = tmp_path / "foreign.ledger.jsonl"
    foreign.write_text('{"kind": "nope", "schema": 1}\n')
    assert obs_main(["ledger", "summarize", str(foreign)]) == 1
    assert "error:" in capsys.readouterr().err


def test_inspect_store_json_payload(tmp_path):
    job = golden_jobs()["gcc/synchronous"]
    engine = ExperimentEngine(cache=ResultCache(directory=tmp_path / "store"))
    engine.run_all([job])
    summary = inspect_store(tmp_path / "store")
    assert summary["entries"] == 1
    assert summary["servable_entries"] == 1
    assert summary["unreadable_entries"] == 0
    assert summary["version_mismatches"] == 0
    assert "cache_stats" in summary and "hits" in summary["cache_stats"]


# ------------------------------------------------------------ bench history


def _bench_entry(seconds: float, calibration: float, *, quick: bool = True) -> dict:
    entry = BenchEntry(
        suite="sweep",
        environment=EnvironmentFingerprint.collect(),
        calibration_seconds=calibration,
        parameters={"quick": quick},
        runs=[
            BenchRun(
                name="figure6_sweep_serial",
                seconds=seconds,
                normalized=seconds / calibration,
                simulations=62,
            )
        ],
    )
    return entry.to_dict()


def test_bench_history_trajectory_and_regression_flags(tmp_path):
    history = {
        "sweep": [
            _bench_entry(10.0, 0.1),
            _bench_entry(5.0, 0.1),
            _bench_entry(9.0, 0.1),  # +80% normalized: regression
            _bench_entry(2.0, 0.1, quick=False),  # different mode: no delta
        ]
    }
    (tmp_path / "BENCH_sweep.json").write_text(json.dumps(history))
    trajectories = load_trajectories(tmp_path, tolerance=0.15)
    rows = trajectories["sweep"]
    assert [row.mode for row in rows] == ["quick", "quick", "quick", "full"]
    assert rows[0].delta_percent is None
    assert rows[1].delta_percent == pytest.approx(-50.0)
    assert not rows[1].regression
    assert rows[2].delta_percent == pytest.approx(80.0)
    assert rows[2].regression
    assert rows[3].delta_percent is None, "full-mode rows never compare to quick rows"

    text = render_history(trajectories)
    assert "REGRESSION" in text
    markdown = render_history(trajectories, markdown=True)
    assert "### sweep" in markdown
    assert "| timestamp |" in markdown


def test_bench_history_skips_invalid_entries_and_honours_limit(tmp_path):
    history = {"sweep": [{"not": "an entry"}, _bench_entry(4.0, 0.1), _bench_entry(3.0, 0.1)]}
    (tmp_path / "BENCH_sweep.json").write_text(json.dumps(history))
    trajectories = load_trajectories(tmp_path, limit=1)
    assert len(trajectories["sweep"]) == 1
    # The delta is computed over the full history before limiting.
    assert trajectories["sweep"][0].delta_percent == pytest.approx(-25.0)
    with pytest.raises(FileNotFoundError):
        load_trajectories(tmp_path / "missing")


def test_bench_history_cli(tmp_path, capsys):
    from repro.bench.cli import main as bench_main

    (tmp_path / "BENCH_sweep.json").write_text(
        json.dumps({"sweep": [_bench_entry(4.0, 0.1)]})
    )
    assert bench_main(["history", "--output-dir", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["sweep"][0]["simulations"] == 62
