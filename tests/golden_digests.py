"""Golden-value helpers: stable digests of representative RunResults.

The hot-path optimisation work (edge scheduling, fast-forward, precomputed
dispatch tables, trace memoisation) must be *bit-identical*: the digest of a
``RunResult`` for a fixed (workload, machine, seed, window) must never change
unless the simulator's modelling intentionally changes.  This module defines
the representative job set and the digest function; the recorded golden
values live in ``tests/test_golden_values.py``.

Run as a script to print the current digests::

    PYTHONPATH=src python tests/golden_digests.py
"""

from __future__ import annotations

import hashlib
import json

from repro.engine import SimulationJob, SpecKind, run_job
from repro.workloads import get_workload


def golden_jobs() -> dict[str, SimulationJob]:
    """Small, fast, representative jobs covering the three machine styles."""
    gcc = get_workload("gcc")
    em3d = get_workload("em3d")
    return {
        "gcc/synchronous": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/program_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/phase_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/synchronous": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/phase_adaptive": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        # Jittered configurations, pinning the timing-uncertainty path (the
        # index-addressable jitter stream, true-edge synchronisation and the
        # jittered fast-forward) exactly like the jitter-free path.
        "gcc/phase_adaptive_jittered": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.05,
        ),
        "em3d/program_adaptive_jittered_wide_window": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.10,
            sync_window_fraction=0.45,
        ),
    }


def result_digest(result) -> str:
    """Stable sha256 of a RunResult's full serialised content."""
    payload = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compute_digests() -> dict[str, str]:
    """Simulate every golden job and return its digest."""
    return {name: result_digest(run_job(job)) for name, job in golden_jobs().items()}


if __name__ == "__main__":
    for name, digest in compute_digests().items():
        print(f'    "{name}": "{digest}",')
