"""Golden-value helpers: stable digests of representative RunResults.

The hot-path optimisation work (edge scheduling, fast-forward, precomputed
dispatch tables, trace memoisation) must be *bit-identical*: the digest of a
``RunResult`` for a fixed (workload, machine, seed, window) must never change
unless the simulator's modelling intentionally changes.  This module defines
the representative job set; the digest functions and the field partition
behind them live in :mod:`repro.analysis.digests` (re-exported here), where
``python -m repro.checks`` audits them.  The recorded golden values live in
``tests/test_golden_values.py``.

Run as a script to print the current digests::

    PYTHONPATH=src python tests/golden_digests.py
"""

from __future__ import annotations

from repro.analysis.digests import (
    FAST_PATH_OBSERVABILITY_FIELDS,
    TIMING_DIGEST_FIELDS,
    energy_digest,
    result_digest,
)
from repro.engine import SimulationJob, SpecKind, run_job
from repro.workloads import get_workload

__all__ = [
    "ENERGY_GOLDEN_DIGESTS",
    "ENERGY_GOLDEN_JOBS",
    "FAST_PATH_OBSERVABILITY_FIELDS",
    "TIMING_DIGEST_FIELDS",
    "compute_digests",
    "compute_energy_digests",
    "energy_digest",
    "golden_jobs",
    "result_digest",
]


def golden_jobs() -> dict[str, SimulationJob]:
    """Small, fast, representative jobs covering the three machine styles."""
    gcc = get_workload("gcc")
    em3d = get_workload("em3d")
    return {
        "gcc/synchronous": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/program_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/phase_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/synchronous": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/phase_adaptive": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        # Jittered configurations, pinning the timing-uncertainty path (the
        # index-addressable jitter stream, true-edge synchronisation and the
        # jittered fast-forward) exactly like the jitter-free path.
        "gcc/phase_adaptive_jittered": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.05,
        ),
        "em3d/program_adaptive_jittered_wide_window": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.10,
            sync_window_fraction=0.45,
        ),
    }


#: Pinned energy digests of representative golden jobs, one per machine
#: style.  Recorded when the energy-accounting subsystem landed; any
#: divergence means either an activity counter or the energy model's
#: arithmetic changed, which must be intentional and declared.
ENERGY_GOLDEN_DIGESTS = {
    "gcc/phase_adaptive": "6cee7c3ee979d668a69426f8fa20228d2df058fb8e2c720b54d84bec736c4abf",
    "em3d/synchronous": "5fba102f38add920154310b79f23947b6203657b452a2769fd005224375b770d",
    "gcc/program_adaptive": "3b4d88e9f8a76f6c0774554614685f446a7e7c555ad54c35c9499f3ce5f0dc5d",
}

#: Golden jobs whose energy digests are pinned (see test_golden_values.py).
ENERGY_GOLDEN_JOBS = tuple(ENERGY_GOLDEN_DIGESTS)


def compute_digests() -> dict[str, str]:
    """Simulate every golden job and return its timing digest."""
    return {name: result_digest(run_job(job)) for name, job in golden_jobs().items()}


def compute_energy_digests() -> dict[str, str]:
    """Simulate the energy golden jobs and return their energy digests."""
    jobs = golden_jobs()
    return {name: energy_digest(run_job(jobs[name])) for name in ENERGY_GOLDEN_JOBS}


if __name__ == "__main__":
    for name, digest in compute_digests().items():
        print(f'    "{name}": "{digest}",')
    print("energy:")
    for name, digest in compute_energy_digests().items():
        print(f'    "{name}": "{digest}",')
