"""Golden-value helpers: stable digests of representative RunResults.

The hot-path optimisation work (edge scheduling, fast-forward, precomputed
dispatch tables, trace memoisation) must be *bit-identical*: the digest of a
``RunResult`` for a fixed (workload, machine, seed, window) must never change
unless the simulator's modelling intentionally changes.  This module defines
the representative job set and the digest function; the recorded golden
values live in ``tests/test_golden_values.py``.

Run as a script to print the current digests::

    PYTHONPATH=src python tests/golden_digests.py
"""

from __future__ import annotations

import hashlib
import json

from repro.energy import energy_report
from repro.engine import SimulationJob, SpecKind, run_job
from repro.workloads import get_workload

#: The RunResult fields that existed before the energy-accounting subsystem.
#: Timing digests hash exactly this serialisation, so adding new
#: (observation-only) activity fields can never move a pinned timing digest —
#: only a change to simulated *behaviour* can.
TIMING_DIGEST_FIELDS = (
    "workload",
    "machine",
    "style",
    "committed_instructions",
    "execution_time_ps",
    "domain_cycles",
    "final_frequencies_ghz",
    "branch_predictions",
    "branch_mispredictions",
    "icache_accesses",
    "icache_b_hits",
    "icache_misses",
    "loads",
    "stores",
    "l1d_hits_a",
    "l1d_hits_b",
    "l1d_misses",
    "l2_hits_a",
    "l2_hits_b",
    "l2_misses",
    "memory_accesses",
    "loads_forwarded",
    "sync_transfers",
    "sync_penalties",
    "fetch_stall_cycles",
    "branch_stall_cycles",
    "int_queue_average_occupancy",
    "fp_queue_average_occupancy",
    "configuration_changes",
)

#: Observation-only counters describing how a run was *simulated* (compiled
#: trace columns, horizon scheduling, fast-forward), not what the machine
#: did.  They vary with the fast-path knobs while the simulated behaviour is
#: bit-identical, so they are excluded from the energy digest exactly as the
#: timing fields are (and were never part of the timing digest).
FAST_PATH_OBSERVABILITY_FIELDS = frozenset(
    {
        "fast_forward_invocations",
        "fast_forward_cycles",
        "steady_stretches_skipped",
        "horizon_skipped_edges",
        "compiled_trace_cache_hits",
    }
)


def golden_jobs() -> dict[str, SimulationJob]:
    """Small, fast, representative jobs covering the three machine styles."""
    gcc = get_workload("gcc")
    em3d = get_workload("em3d")
    return {
        "gcc/synchronous": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/program_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
        ),
        "gcc/phase_adaptive": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/synchronous": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        ),
        "em3d/phase_adaptive": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        ),
        # Jittered configurations, pinning the timing-uncertainty path (the
        # index-addressable jitter stream, true-edge synchronisation and the
        # jittered fast-forward) exactly like the jitter-free path.
        "gcc/phase_adaptive_jittered": SimulationJob(
            profile=gcc,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.05,
        ),
        "em3d/program_adaptive_jittered_wide_window": SimulationJob(
            profile=em3d,
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
            jitter_fraction=0.10,
            sync_window_fraction=0.45,
        ),
    }


def result_digest(result) -> str:
    """Stable sha256 of a RunResult's timing content.

    Hashes the serialisation of :data:`TIMING_DIGEST_FIELDS` — byte-identical
    to the full ``to_dict`` serialisation of the pre-energy schema, so every
    digest recorded before the energy subsystem remains directly comparable.
    """
    data = result.to_dict()
    payload = json.dumps(
        {name: data[name] for name in TIMING_DIGEST_FIELDS},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def energy_digest(result) -> str:
    """Stable sha256 of a run's activity counters and energy breakdown.

    Covers the new activity/structure fields of the ``RunResult`` *and* the
    derived :class:`~repro.energy.EnergyReport`, so both the counters and
    the energy model's arithmetic are pinned.
    """
    data = result.to_dict()
    activity = {
        name: value
        for name, value in data.items()
        if name not in TIMING_DIGEST_FIELDS
        and name not in FAST_PATH_OBSERVABILITY_FIELDS
    }
    payload = json.dumps(
        {"activity": activity, "energy": energy_report(result).to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Pinned energy digests of representative golden jobs, one per machine
#: style.  Recorded when the energy-accounting subsystem landed; any
#: divergence means either an activity counter or the energy model's
#: arithmetic changed, which must be intentional and declared.
ENERGY_GOLDEN_DIGESTS = {
    "gcc/phase_adaptive": "6cee7c3ee979d668a69426f8fa20228d2df058fb8e2c720b54d84bec736c4abf",
    "em3d/synchronous": "5fba102f38add920154310b79f23947b6203657b452a2769fd005224375b770d",
    "gcc/program_adaptive": "3b4d88e9f8a76f6c0774554614685f446a7e7c555ad54c35c9499f3ce5f0dc5d",
}

#: Golden jobs whose energy digests are pinned (see test_golden_values.py).
ENERGY_GOLDEN_JOBS = tuple(ENERGY_GOLDEN_DIGESTS)


def compute_digests() -> dict[str, str]:
    """Simulate every golden job and return its timing digest."""
    return {name: result_digest(run_job(job)) for name, job in golden_jobs().items()}


def compute_energy_digests() -> dict[str, str]:
    """Simulate the energy golden jobs and return their energy digests."""
    jobs = golden_jobs()
    return {name: energy_digest(run_job(jobs[name])) for name in ENERGY_GOLDEN_JOBS}


if __name__ == "__main__":
    for name, digest in compute_digests().items():
        print(f'    "{name}": "{digest}",')
    print("energy:")
    for name, digest in compute_energy_digests().items():
        print(f'    "{name}": "{digest}",')
