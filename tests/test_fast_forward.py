"""Behaviour-preservation tests for the hot-path fast-forward.

The quiescent-phase fast-forward must be purely a wall-clock optimisation:
simulated results are bit-identical with it on or off, and it stands down
whenever skipping could interact with the adaptive controllers (a
reconfiguration in progress) or with jittered clocks.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.domains import Domain
from repro.core.processor import MCDProcessor
from repro.engine import SimulationJob, SpecKind, make_trace, run_job
from repro.workloads import get_workload


def run_with_fast_path(
    job: SimulationJob, *, fast_forward: bool = True, horizon: bool = True
) -> tuple[MCDProcessor, object]:
    processor = MCDProcessor(
        job.build_spec(),
        control=job.resolved_control(),
        phase_adaptive=job.phase_adaptive,
        seed=job.seed,
        jitter_fraction=job.jitter_fraction,
        sync_window_fraction=job.resolved_sync_window_fraction(),
        fast_forward=fast_forward,
        horizon_scheduling=horizon,
    )
    trace = make_trace(job.profile, seed=job.trace_seed)
    result = processor.run(
        trace.instructions(),
        max_instructions=job.resolved_window(),
        warmup_instructions=job.resolved_warmup(),
        workload_name=job.profile.name,
    )
    return processor, result


def run_with_fast_forward(
    job: SimulationJob, enabled: bool
) -> tuple[MCDProcessor, object]:
    return run_with_fast_path(job, fast_forward=enabled)


class TestFastForwardGolden:
    def test_fig6_workload_run_result_identical_with_and_without_fast_forward(self):
        """Golden-value check: a fixed-seed fig6 workload is bit-identical."""
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=2_000,
            warmup=1_500,
        )
        with_ff_processor, with_ff = run_with_fast_forward(job, True)
        without_ff_processor, without_ff = run_with_fast_forward(job, False)
        # The comparison only means something if fast-forward actually fired.
        assert with_ff_processor.fast_forward_cycles > 0
        assert without_ff_processor.fast_forward_cycles == 0
        assert with_ff == without_ff

    def test_phase_adaptive_run_result_identical_with_and_without_fast_forward(self):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=2_000,
            warmup=1_500,
        )
        _, with_ff = run_with_fast_forward(job, True)
        _, without_ff = run_with_fast_forward(job, False)
        assert with_ff == without_ff

    def test_engine_path_uses_fast_forward_by_default(self):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_200,
            warmup=800,
        )
        _, direct = run_with_fast_forward(job, True)
        assert run_job(job) == direct


def drained_processor() -> MCDProcessor:
    """A processor forced into the quiescent state the main loop checks for.

    A short run builds the front end and realistic clock state; the in-flight
    machinery is then explicitly drained, which is exactly the precondition
    under which the main loop consults ``_try_fast_forward``.
    """
    job = SimulationJob(
        profile=get_workload("gcc"),
        spec_kind=SpecKind.BEST_SYNCHRONOUS,
        window=400,
        warmup=200,
    )
    processor, _ = run_with_fast_forward(job, True)
    assert processor.frontend is not None
    processor.rob.reset()
    processor.frontend.fetch_queue.clear()
    processor.frontend._waiting_branch = None
    processor.lsq.reset()
    processor.int_queue.reset()
    processor.fp_queue.reset()
    processor._pending_events.clear()
    processor._changes_in_progress.clear()
    processor.fast_forward_invocations = 0
    processor.fast_forward_cycles = 0
    assert processor.rob.is_empty()
    assert processor.frontend.fetch_queue.occupancy == 0
    return processor


def clock_tuple(processor: MCDProcessor):
    return (
        processor.clocks[Domain.FRONT_END],
        processor.clocks[Domain.INTEGER],
        processor.clocks[Domain.FLOATING_POINT],
        processor.clocks[Domain.LOAD_STORE],
    )


class TestFastForwardGating:
    def test_skips_idle_edges_up_to_the_stall_horizon(self):
        processor = drained_processor()
        clocks = clock_tuple(processor)
        fe_clock = clocks[0]
        processor.frontend._stall_until = fe_clock.next_edge + 50 * fe_clock.period_ps
        stalls_before = processor.frontend.stats.fetch_stall_cycles
        # The horizon of the stretch being skipped, computed before the call:
        # the fast-forward may legitimately chain past it (it runs fetch at
        # the resume edge and keeps going through an I-cache miss streak).
        horizon = fe_clock.edge_at_or_after(processor.frontend._stall_until)

        processor._try_fast_forward(*clocks)

        assert processor.fast_forward_invocations == 1
        assert processor.fast_forward_cycles > 0
        assert processor.steady_stretches_skipped >= 1
        for clock in clocks:
            assert clock.next_edge >= horizon
        # Skipped front-end edges are accounted as fetch stalls, as the
        # one-cycle-at-a-time path would have counted them.
        assert processor.frontend.stats.fetch_stall_cycles > stalls_before

    def test_bypassed_while_a_reconfiguration_is_in_progress(self):
        """Active controllers (a change mid-flight) disable the fast-forward."""
        processor = drained_processor()
        clocks = clock_tuple(processor)
        fe_clock = clocks[0]
        processor.frontend._stall_until = fe_clock.next_edge + 50 * fe_clock.period_ps
        processor._changes_in_progress.add(Domain.LOAD_STORE)

        before = [clock.next_edge for clock in clocks]
        processor._try_fast_forward(*clocks)

        assert processor.fast_forward_invocations == 0
        assert processor.fast_forward_cycles == 0
        assert [clock.next_edge for clock in clocks] == before

    def test_bypassed_while_fetch_waits_on_an_unresolved_branch(self):
        processor = drained_processor()
        clocks = clock_tuple(processor)
        processor.frontend._waiting_branch = object()

        processor._try_fast_forward(*clocks)

        assert processor.fast_forward_cycles == 0

    def test_pending_reconfiguration_event_caps_the_horizon(self):
        processor = drained_processor()
        clocks = clock_tuple(processor)
        fe_clock = clocks[0]
        period = fe_clock.period_ps
        processor.frontend._stall_until = fe_clock.next_edge + 100 * period
        event_time = fe_clock.next_edge + 10 * period
        fired = []
        processor._pending_events.append((event_time, lambda: fired.append(True)))

        processor._try_fast_forward(*clocks)

        # No domain skipped past the pending event, and it did not fire.
        for clock in clocks:
            assert clock.next_edge - clock.period_ps < event_time
        assert not fired
        assert processor._pending_events

    def test_enabled_under_clock_jitter(self):
        """The index-addressable jitter stream keeps bulk skips exact, so
        jitter no longer disables the fast-forward."""
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=300,
            warmup=100,
        )
        processor = MCDProcessor(job.build_spec(), seed=1, jitter_fraction=0.1)
        assert processor._fast_forward_enabled

    def test_explicitly_disabled_never_skips(self):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=2_000,
            warmup=1_500,
        )
        processor, _ = run_with_fast_forward(job, False)
        assert processor.fast_forward_invocations == 0
        assert processor.fast_forward_cycles == 0


class TestBulkEdgeSkip:
    def test_skip_edges_matches_individual_advances(self):
        from repro.clocks.clock import DomainClock

        bulk = DomainClock("test", 1.0)
        stepwise = DomainClock("test", 1.0)
        bulk.skip_edges(7)
        for _ in range(7):
            stepwise.advance()
        assert bulk.next_edge == stepwise.next_edge
        assert bulk.cycle_count == stepwise.cycle_count

    def test_skip_edges_matches_individual_advances_under_jitter(self):
        from repro.clocks.clock import DomainClock

        bulk = DomainClock("test", 1.0, jitter_fraction=0.2, seed=3)
        stepwise = DomainClock("test", 1.0, jitter_fraction=0.2, seed=3)
        bulk.skip_edges(7)
        for _ in range(7):
            stepwise.advance()
        assert bulk.next_edge == stepwise.next_edge
        assert bulk.cycle_count == stepwise.cycle_count


class TestHorizonScheduling:
    """Event-horizon edge scheduling is a pure wall-clock optimisation:
    bit-identical results with it on or off, on every machine style."""

    def adaptive_job(self, **kwargs) -> SimulationJob:
        return SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.ADAPTIVE,
            use_b_partitions=False,
            window=2_000,
            warmup=1_500,
            **kwargs,
        )

    def test_horizon_on_off_identical_jitter_free(self):
        job = self.adaptive_job()
        with_processor, with_horizon = run_with_fast_path(job, horizon=True)
        without_processor, without_horizon = run_with_fast_path(job, horizon=False)
        # The comparison only means something if edges were actually skipped.
        assert with_processor.horizon_skipped_edges > 0
        assert without_processor.horizon_skipped_edges == 0
        assert with_horizon == without_horizon

    def test_horizon_on_off_identical_jittered(self):
        job = self.adaptive_job(jitter_fraction=0.05)
        with_processor, with_horizon = run_with_fast_path(job, horizon=True)
        _, without_horizon = run_with_fast_path(job, horizon=False)
        assert with_processor.horizon_skipped_edges > 0
        assert with_horizon == without_horizon

    def test_horizon_on_off_identical_phase_adaptive(self):
        job = SimulationJob(
            profile=get_workload("em3d"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=2_000,
            warmup=1_500,
        )
        _, with_horizon = run_with_fast_path(job, horizon=True)
        _, without_horizon = run_with_fast_path(job, horizon=False)
        assert with_horizon == without_horizon

    @pytest.mark.parametrize("jitter", [0.0, 0.05])
    def test_every_fast_path_combination_is_identical(self, jitter):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
            jitter_fraction=jitter,
        )
        _, baseline = run_with_fast_path(job, fast_forward=False, horizon=False)
        for fast_forward, horizon in itertools.product((False, True), repeat=2):
            _, result = run_with_fast_path(
                job, fast_forward=fast_forward, horizon=horizon
            )
            assert result == baseline, (fast_forward, horizon)

    def test_counters_stay_out_of_result_equality(self):
        job = self.adaptive_job()
        _, with_horizon = run_with_fast_path(job, horizon=True)
        _, without_horizon = run_with_fast_path(job, horizon=False)
        assert with_horizon.horizon_skipped_edges > 0
        assert without_horizon.horizon_skipped_edges == 0
        # Equal despite differing observability counters (compare=False).
        assert with_horizon == without_horizon


class TestCounterHygiene:
    """Fast-path counters reset with the warm-up reset, so they describe the
    measured window even if the processor object arrives polluted."""

    def job(self) -> SimulationJob:
        return SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        )

    COUNTERS = (
        "fast_forward_invocations",
        "fast_forward_cycles",
        "steady_stretches_skipped",
        "horizon_skipped_edges",
    )

    def run_once(self, polluted: bool):
        job = self.job()
        processor = MCDProcessor(
            job.build_spec(),
            control=job.resolved_control(),
            seed=job.seed,
            sync_window_fraction=job.resolved_sync_window_fraction(),
        )
        if polluted:
            for name in self.COUNTERS:
                setattr(processor, name, 1_000_000)
        trace = make_trace(job.profile, seed=job.trace_seed)
        result = processor.run(
            trace.instructions(),
            max_instructions=job.resolved_window(),
            warmup_instructions=job.resolved_warmup(),
            workload_name=job.profile.name,
        )
        return processor, result

    def test_warm_up_reset_erases_pollution(self):
        _, clean = self.run_once(polluted=False)
        _, polluted = self.run_once(polluted=True)
        assert polluted == clean
        for name in self.COUNTERS:
            value = getattr(polluted, name)
            assert value == getattr(clean, name)
            assert value < 1_000_000

    def test_counters_describe_the_measured_window_only(self):
        processor, result = self.run_once(polluted=False)
        assert result.fast_forward_invocations == processor.fast_forward_invocations
        assert result.fast_forward_cycles == processor.fast_forward_cycles
        assert result.horizon_skipped_edges == processor.horizon_skipped_edges


class TestJitteredFastForward:
    """Under jitter the fast-forward must stay a pure wall-clock optimisation,
    exactly as on jitter-free clocks."""

    def jittered_job(self, **kwargs) -> SimulationJob:
        return SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=2_000,
            warmup=1_500,
            jitter_fraction=0.05,
            **kwargs,
        )

    def test_jittered_run_identical_with_and_without_fast_forward(self):
        job = self.jittered_job()
        with_ff_processor, with_ff = run_with_fast_forward(job, True)
        without_ff_processor, without_ff = run_with_fast_forward(job, False)
        # The comparison only means something if fast-forward actually fired.
        assert with_ff_processor.fast_forward_cycles > 0
        assert without_ff_processor.fast_forward_cycles == 0
        assert with_ff == without_ff

    def test_jittered_phase_adaptive_identical_with_and_without_fast_forward(self):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=2_000,
            warmup=1_500,
            jitter_fraction=0.05,
        )
        _, with_ff = run_with_fast_forward(job, True)
        _, without_ff = run_with_fast_forward(job, False)
        assert with_ff == without_ff

    def test_engine_path_runs_jittered_jobs_with_fast_forward(self):
        job = self.jittered_job()
        _, direct = run_with_fast_forward(job, True)
        assert run_job(job) == direct
