"""Tests for run records and derived metrics."""

import pytest

from repro.analysis import (
    ConfigurationChange,
    RunResult,
    geometric_mean,
    relative_improvement,
)


def make_result(time_ps=1_000_000, instructions=1000, **overrides):
    base = dict(
        workload="test",
        machine="machine",
        style="synchronous",
        committed_instructions=instructions,
        execution_time_ps=time_ps,
        domain_cycles={"front_end": 2000, "integer": 2000,
                       "floating_point": 2000, "load_store": 2000},
    )
    base.update(overrides)
    return RunResult(**base)


class TestRunResult:
    def test_time_conversions(self):
        result = make_result(time_ps=2_500_000)
        assert result.execution_time_us == pytest.approx(2.5)
        assert result.execution_time_ns == pytest.approx(2500.0)

    def test_ipc_and_throughput(self):
        result = make_result(time_ps=1_000_000, instructions=1000)
        assert result.front_end_ipc == pytest.approx(0.5)
        assert result.instructions_per_second == pytest.approx(1e9)

    def test_rates_handle_zero_denominators(self):
        result = make_result()
        assert result.branch_misprediction_rate == 0.0
        assert result.l1d_miss_rate == 0.0
        assert result.icache_miss_rate == 0.0

    def test_rates(self):
        result = make_result(
            branch_predictions=100, branch_mispredictions=5,
            loads=200, stores=100, l1d_misses=30,
            icache_accesses=50, icache_misses=10,
        )
        assert result.branch_misprediction_rate == pytest.approx(0.05)
        assert result.l1d_miss_rate == pytest.approx(0.1)
        assert result.icache_miss_rate == pytest.approx(0.2)

    def test_improvement_over(self):
        slow = make_result(time_ps=2_000_000)
        fast = make_result(time_ps=1_000_000)
        assert fast.improvement_over(slow) == pytest.approx(1.0)
        assert slow.improvement_over(fast) == pytest.approx(-0.5)

    def test_summary_contains_key_numbers(self):
        result = make_result()
        text = result.summary()
        assert "test" in text and "ipc" in text

    def test_configuration_changes_recorded(self):
        change = ConfigurationChange(
            committed_instructions=500, time_ps=123, domain="load_store",
            structure="dcache", configuration="64k2W/512k2W", index=1,
        )
        result = make_result(configuration_changes=[change])
        assert result.configuration_changes[0].structure == "dcache"


class TestImprovementHelpers:
    def test_relative_improvement_normalises_different_windows(self):
        baseline = make_result(time_ps=2_000_000, instructions=1000)
        candidate = make_result(time_ps=1_500_000, instructions=750)
        # Same time per instruction: no improvement.
        assert relative_improvement(baseline, candidate) == pytest.approx(0.0)

    def test_relative_improvement_rejects_bad_candidate(self):
        baseline = make_result()
        broken = make_result(time_ps=0)
        with pytest.raises(ValueError):
            relative_improvement(baseline, broken)

    def test_geometric_mean(self):
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.1, 0.1]) == pytest.approx(0.1)
        assert geometric_mean([0.0, 0.21]) == pytest.approx(0.1, abs=0.01)

    def test_geometric_mean_rejects_total_loss(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])
