"""Tests for the scenario campaign subsystem (repro.scenarios)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis.metrics import ConfigurationChange, RunResult
from repro.engine import ExperimentEngine, ResultCache, SerialExecutor
from repro.scenarios import (
    ARCHETYPES,
    CONTROLLER_INTERVAL,
    FAMILIES,
    MACHINE_STYLES,
    QUICK_MATRIX_SCENARIOS,
    SCENARIO_SUITE,
    SCENARIOS,
    ScenarioSpec,
    archetype_overrides,
    count_reconfigurations,
    get_scenario,
    run_campaign,
    scenario_names,
    scenarios_in_family,
)
from repro.scenarios.cli import main as scenarios_main
from repro.workloads import get_workload
from repro.workloads.characteristics import PhaseSpec
from repro.workloads.phases import square_wave

#: Tiny run parameters shared by the campaign integration tests.
TINY_WINDOW = 600
TINY_WARMUP = 800


def tiny_scenario(name: str = "tiny-scn", **kwargs) -> ScenarioSpec:
    defaults = dict(
        family="adversarial",
        overrides={
            "code_footprint_kb": 4.0,
            "inner_window_kb": 2.0,
            "data_footprint_kb": 64.0,
            "hot_data_kb": 16.0,
        },
        phases=square_wave(
            {"hot_data_kb": 8.0}, {"hot_data_kb": 48.0}, period=400
        ),
        simulation_window=2_000,
    )
    defaults.update(kwargs)
    return ScenarioSpec(name=name, **defaults)


class TestScenarioSpec:
    def test_builds_a_validated_profile(self):
        scenario = tiny_scenario()
        profile = scenario.build_profile()
        assert profile.name == "tiny-scn"
        assert profile.suite == SCENARIO_SUITE
        assert profile.simulation_window == 2_000
        assert profile.phases == scenario.phases

    def test_base_profile_derivation(self):
        scenario = ScenarioSpec(
            name="derived", family="paper", base="gcc", simulation_window=5_000
        )
        profile = scenario.build_profile()
        base = get_workload("gcc")
        assert profile.code_footprint_kb == base.code_footprint_kb
        assert profile.simulation_window == 5_000
        assert profile.suite == SCENARIO_SUITE

    def test_empty_name_or_family_rejected(self):
        with pytest.raises(ValueError, match="name"):
            tiny_scenario(name="")
        with pytest.raises(ValueError, match="family"):
            tiny_scenario(family=" ")

    def test_reserved_override_fields_rejected(self):
        with pytest.raises(ValueError, match="spec-level"):
            tiny_scenario(overrides={"name": "sneaky"})
        with pytest.raises(ValueError, match="spec-level"):
            tiny_scenario(overrides={"phases": ()})

    def test_unknown_override_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown profile fields"):
            tiny_scenario(overrides={"no_such_field": 1})

    def test_out_of_range_phase_overrides_rejected_at_construction(self):
        # ScenarioSpec construction runs WorkloadProfile.validate, so an
        # effective per-phase value out of range fails at definition time.
        with pytest.raises(ValueError, match="hot_data_fraction"):
            tiny_scenario(
                phases=(PhaseSpec(length=100, overrides={"hot_data_fraction": 1.5}),)
            )
        with pytest.raises(ValueError, match="cannot exceed"):
            tiny_scenario(
                phases=(PhaseSpec(length=100, overrides={"hot_data_kb": 4096.0}),)
            )

    def test_dict_round_trip(self):
        scenario = tiny_scenario()
        rebuilt = ScenarioSpec.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.build_profile() == scenario.build_profile()

    def test_json_round_trip(self):
        scenario = tiny_scenario()
        rebuilt = ScenarioSpec.from_json(scenario.to_json())
        assert rebuilt == scenario

    def test_from_dict_rejects_unknown_keys(self):
        payload = tiny_scenario().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown ScenarioSpec fields"):
            ScenarioSpec.from_dict(payload)

    def test_pickle_round_trip(self):
        scenario = tiny_scenario()
        assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_phase_program_length(self):
        assert tiny_scenario().phase_program_length == 400
        assert tiny_scenario(phases=()).phase_program_length == 0


class TestArchetypes:
    def test_every_archetype_builds_a_valid_scenario(self):
        for kind in ARCHETYPES:
            ScenarioSpec(
                name=f"probe-{kind}",
                family="archetype",
                overrides=archetype_overrides(kind),
            ).build_profile()

    def test_parameterisation_reaches_the_profile(self):
        overrides = archetype_overrides("pointer_chasing", footprint_kb=2048.0)
        assert overrides["data_footprint_kb"] == 2048.0

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            archetype_overrides("quantum")


class TestLibrary:
    def test_library_size_and_uniqueness(self):
        names = scenario_names()
        assert len(names) >= 20
        assert len(set(names)) == len(names)

    def test_every_scenario_builds(self):
        for scenario in SCENARIOS.values():
            profile = scenario.build_profile()
            assert profile.name == scenario.name

    def test_all_families_populated(self):
        for family in FAMILIES:
            assert scenarios_in_family(family)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            scenarios_in_family("nope")

    def test_get_scenario_round_trip_and_unknown(self):
        assert get_scenario(scenario_names()[0]) is next(iter(SCENARIOS.values()))
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_quick_matrix_subset_is_resolvable_and_large_enough(self):
        assert len(QUICK_MATRIX_SCENARIOS) >= 16
        for name in QUICK_MATRIX_SCENARIOS:
            get_scenario(name)

    def test_period_family_straddles_the_controller_interval(self):
        periods = [
            get_scenario(f"adv-period-{label}-interval").phase_program_length
            for label in ("half", "1x", "2x", "4x")
        ]
        assert periods == sorted(periods)
        assert periods[0] < CONTROLLER_INTERVAL <= periods[1]
        assert periods[-1] == 4 * CONTROLLER_INTERVAL

    def test_hysteresis_pairs_share_everything_but_the_swing(self):
        inside = get_scenario("adv-hysteresis-inside-cache")
        outside = get_scenario("adv-hysteresis-outside-cache")
        assert inside.phase_program_length == outside.phase_program_length
        inside_swing = [p.overrides["hot_data_kb"] for p in inside.phases]
        outside_swing = [p.overrides["hot_data_kb"] for p in outside.phases]
        assert max(inside_swing) - min(inside_swing) < max(outside_swing) - min(
            outside_swing
        )


class TestCountReconfigurations:
    @staticmethod
    def _result(changes) -> RunResult:
        return RunResult(
            workload="w",
            machine="m",
            style="phase_adaptive",
            committed_instructions=1,
            execution_time_ps=1,
            configuration_changes=[
                ConfigurationChange(
                    committed_instructions=i,
                    time_ps=i,
                    domain="d",
                    structure=structure,
                    configuration=str(index),
                    index=index,
                )
                for i, (structure, index) in enumerate(changes)
            ],
        )

    def test_interval_confirmations_are_not_reconfigurations(self):
        # The cache controllers record a decision every interval even when
        # the configuration is unchanged.
        result = self._result([("dcache", 0), ("dcache", 0), ("dcache", 0)])
        assert count_reconfigurations(result) == {}

    def test_transitions_are_counted_per_structure(self):
        result = self._result(
            [("dcache", 0), ("dcache", 2), ("dcache", 2), ("dcache", 0), ("icache", 1)]
        )
        assert count_reconfigurations(result) == {"dcache": 2, "icache": 1}

    def test_first_queue_record_counts_against_the_base_size(self):
        # Queue records only exist for actual resizings; leaving the 16-entry
        # base is itself a reconfiguration.
        result = self._result([("int-queue", 64), ("int-queue", 16)])
        assert count_reconfigurations(result) == {"int-queue": 2}


class TestCampaign:
    def _engine(self, tmp_path=None) -> ExperimentEngine:
        cache = ResultCache(tmp_path) if tmp_path is not None else ResultCache()
        return ExperimentEngine(SerialExecutor(), cache)

    def test_rows_follow_scenario_order(self):
        scenarios = [tiny_scenario("scn-a"), tiny_scenario("scn-b")]
        result = run_campaign(
            scenarios, window=TINY_WINDOW, warmup=TINY_WARMUP, engine=self._engine()
        )
        assert [row.scenario.name for row in result.rows] == ["scn-a", "scn-b"]
        assert result.simulations > 0
        for row in result.rows:
            assert row.comparison.synchronous.committed_instructions > 0
            assert row.comparison.phase_adaptive.committed_instructions > 0

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_campaign([tiny_scenario("dup"), tiny_scenario("dup")])

    def test_rerun_is_served_entirely_from_the_cache(self, tmp_path):
        scenarios = [tiny_scenario("scn-cached")]
        first = run_campaign(
            scenarios,
            window=TINY_WINDOW,
            warmup=TINY_WARMUP,
            engine=self._engine(tmp_path),
        )
        assert first.simulations > 0
        # A fresh engine over the same disk cache: no re-simulation at all.
        second = run_campaign(
            scenarios,
            window=TINY_WINDOW,
            warmup=TINY_WARMUP,
            engine=self._engine(tmp_path),
        )
        assert second.simulations == 0
        assert second.cache_hits > 0
        assert [row.to_dict() for row in second.rows] == [
            row.to_dict() for row in first.rows
        ]

    def test_render_and_to_dict(self):
        result = run_campaign(
            [tiny_scenario("scn-render")],
            window=TINY_WINDOW,
            warmup=TINY_WARMUP,
            engine=self._engine(),
        )
        rendered = result.render()
        assert "scn-render" in rendered
        assert "reconf" in rendered
        payload = result.to_dict()
        assert payload["machine_styles"] == list(MACHINE_STYLES)
        assert payload["rows"][0]["scenario"] == "scn-render"
        # The row payload is JSON-serialisable as-is.
        json.dumps(payload)
        assert result.row_for("scn-render").scenario.name == "scn-render"
        with pytest.raises(KeyError):
            result.row_for("missing")


class TestCli:
    def test_list_renders_every_scenario(self, capsys):
        assert scenarios_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_list_family_filter_and_json(self, capsys):
        assert scenarios_main(["list", "--family", "adversarial", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        assert all(item["family"] == "adversarial" for item in payload)

    def test_describe(self, capsys):
        assert scenarios_main(["describe", "adv-period-1x-interval"]) == 0
        out = capsys.readouterr().out
        assert "adv-period-1x-interval" in out
        assert "phase program" in out

    def test_describe_json_round_trips(self, capsys):
        assert scenarios_main(["describe", "arch-mixed", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(payload) == get_scenario("arch-mixed")

    def test_describe_unknown_scenario_fails(self, capsys):
        assert scenarios_main(["describe", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_single_scenario(self, capsys):
        code = scenarios_main(
            [
                "run",
                "adv-period-1x-interval",
                "--window",
                str(TINY_WINDOW),
                "--warmup",
                str(TINY_WARMUP),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adv-period-1x-interval" in out
        assert "3 machine styles" in out

    def test_matrix_json_with_explicit_scenarios(self, capsys):
        code = scenarios_main(
            [
                "matrix",
                "--scenarios",
                "arch-mixed",
                "--window",
                str(TINY_WINDOW),
                "--warmup",
                str(TINY_WARMUP),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["scenario"] for row in payload["rows"]] == ["arch-mixed"]
        assert payload["simulations"] > 0

    def test_matrix_rejects_empty_selection(self, capsys):
        code = scenarios_main(
            ["matrix", "--scenarios", "arch-mixed", "--family", "adversarial"]
        )
        assert code == 2
        assert "no scenarios selected" in capsys.readouterr().err
