"""Tests for the pipeline building blocks (queues, ROB, LSQ, resources)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.pipeline import (
    DynInst,
    FetchQueue,
    FunctionalUnitPool,
    IssueQueue,
    LoadStoreQueue,
    PhysicalRegisterFile,
    ReorderBuffer,
)


def make_inst(seq, op=OpClass.INT_ALU, dest="r8", sources=("r1",), address=None):
    instruction = Instruction(
        pc=0x1000 + seq * 4, op=op, dest=dest, sources=sources, address=address,
    )
    instruction.seq = seq
    return DynInst(instruction=instruction)


class TestIssueQueue:
    def test_capacity_enforced(self):
        queue = IssueQueue(capacity=2)
        queue.dispatch(make_inst(0), arrival_time=0)
        queue.dispatch(make_inst(1), arrival_time=0)
        assert not queue.has_space
        with pytest.raises(RuntimeError):
            queue.dispatch(make_inst(2), arrival_time=0)

    def test_arrivals_respect_time(self):
        queue = IssueQueue(capacity=4)
        queue.dispatch(make_inst(0), arrival_time=1000)
        queue.admit_arrivals(now=500)
        assert not queue.ready_entries(500, lambda inst, now: True)
        queue.admit_arrivals(now=1000)
        assert len(queue.ready_entries(1000, lambda inst, now: True)) == 1

    def test_ready_entries_oldest_first(self):
        queue = IssueQueue(capacity=8)
        for seq in (5, 2, 9):
            queue.dispatch(make_inst(seq), arrival_time=0)
        queue.admit_arrivals(0)
        ready = queue.ready_entries(0, lambda inst, now: True)
        assert [inst.seq for inst in ready] == [2, 5, 9]

    def test_remove_counts_issues(self):
        queue = IssueQueue(capacity=4)
        inst = make_inst(0)
        queue.dispatch(inst, arrival_time=0)
        queue.admit_arrivals(0)
        queue.remove(inst)
        assert queue.total_issued == 1
        assert queue.occupancy == 0

    def test_resize_does_not_discard_occupants(self):
        queue = IssueQueue(capacity=4)
        for seq in range(4):
            queue.dispatch(make_inst(seq), arrival_time=0)
        queue.set_capacity(2)
        assert queue.occupancy == 4
        assert not queue.has_space

    def test_squash(self):
        queue = IssueQueue(capacity=8)
        for seq in range(6):
            queue.dispatch(make_inst(seq), arrival_time=0)
        queue.admit_arrivals(0)
        removed = queue.squash(lambda inst: inst.seq >= 3)
        assert removed == 3
        assert queue.occupancy == 3

    def test_occupancy_statistics(self):
        queue = IssueQueue(capacity=4)
        queue.dispatch(make_inst(0), arrival_time=0)
        queue.sample_occupancy()
        queue.sample_occupancy()
        assert queue.average_occupancy == 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IssueQueue(capacity=0)


class TestReorderBuffer:
    def test_in_order_commit(self):
        rob = ReorderBuffer(capacity=8)
        first, second = make_inst(0), make_inst(1)
        rob.dispatch(first)
        rob.dispatch(second)
        assert rob.head is first
        assert rob.commit_head() is first
        assert rob.commit_head() is second
        assert rob.total_committed == 2

    def test_capacity(self):
        rob = ReorderBuffer(capacity=2)
        rob.dispatch(make_inst(0))
        rob.dispatch(make_inst(1))
        assert not rob.has_space
        with pytest.raises(RuntimeError):
            rob.dispatch(make_inst(2))

    def test_empty_head_is_none(self):
        assert ReorderBuffer().head is None


class TestLoadStoreQueue:
    def test_allocation_and_release(self):
        lsq = LoadStoreQueue(capacity=2)
        load = make_inst(0, op=OpClass.LOAD, address=0x100)
        lsq.allocate(load)
        assert lsq.occupancy == 1
        lsq.release(load)
        assert lsq.occupancy == 0

    def test_pending_older_store_blocks_same_dword(self):
        lsq = LoadStoreQueue()
        store = make_inst(0, op=OpClass.STORE, dest=None, sources=("r1", "r2"), address=0x100)
        load = make_inst(1, op=OpClass.LOAD, address=0x104)  # same double word
        lsq.allocate(store)
        lsq.allocate(load)
        assert lsq.pending_older_store(load) is store

    def test_unrelated_store_does_not_block(self):
        lsq = LoadStoreQueue()
        store = make_inst(0, op=OpClass.STORE, dest=None, sources=("r1", "r2"), address=0x200)
        load = make_inst(1, op=OpClass.LOAD, address=0x100)
        lsq.allocate(store)
        lsq.allocate(load)
        assert lsq.pending_older_store(load) is None

    def test_forwarding_requires_completed_store(self):
        lsq = LoadStoreQueue()
        store = make_inst(0, op=OpClass.STORE, dest=None, sources=("r1", "r2"), address=0x100)
        load = make_inst(2, op=OpClass.LOAD, address=0x100)
        lsq.allocate(store)
        lsq.allocate(load)
        assert lsq.forwardable_store(load, now=100) is None
        store.completion_time = 50
        assert lsq.forwardable_store(load, now=100) is store

    def test_younger_store_never_forwards(self):
        lsq = LoadStoreQueue()
        load = make_inst(1, op=OpClass.LOAD, address=0x100)
        younger_store = make_inst(5, op=OpClass.STORE, dest=None, sources=("r1", "r2"), address=0x100)
        younger_store.completion_time = 0
        lsq.allocate(load)
        lsq.allocate(younger_store)
        assert lsq.forwardable_store(load, now=100) is None

    def test_capacity(self):
        lsq = LoadStoreQueue(capacity=1)
        lsq.allocate(make_inst(0, op=OpClass.LOAD, address=0))
        with pytest.raises(RuntimeError):
            lsq.allocate(make_inst(1, op=OpClass.LOAD, address=64))


class TestFunctionalUnits:
    def test_alu_slots_reset_each_cycle(self):
        pool = FunctionalUnitPool(alus=2, complex_units=1, complex_ops=frozenset({OpClass.INT_MULT}))
        pool.begin_cycle(0)
        assert pool.try_reserve(OpClass.INT_ALU, 0, 1000)
        assert pool.try_reserve(OpClass.INT_ALU, 0, 1000)
        assert not pool.try_reserve(OpClass.INT_ALU, 0, 1000)
        pool.begin_cycle(1000)
        assert pool.try_reserve(OpClass.INT_ALU, 1000, 1000)

    def test_complex_unit_busy_for_latency(self):
        pool = FunctionalUnitPool(alus=1, complex_units=1, complex_ops=frozenset({OpClass.INT_MULT}))
        pool.begin_cycle(0)
        assert pool.try_reserve(OpClass.INT_MULT, 0, 3000)
        pool.begin_cycle(1000)
        assert not pool.try_reserve(OpClass.INT_MULT, 1000, 3000)
        pool.begin_cycle(3000)
        assert pool.try_reserve(OpClass.INT_MULT, 3000, 3000)


class TestPhysicalRegisterFile:
    def test_allocate_release(self):
        regs = PhysicalRegisterFile(total=40, logical=32)
        assert regs.free == 8
        regs.allocate(8)
        assert not regs.can_allocate()
        regs.release(3)
        assert regs.free == 3

    def test_overflow_and_underflow(self):
        regs = PhysicalRegisterFile(total=34, logical=32)
        regs.allocate(2)
        with pytest.raises(RuntimeError):
            regs.allocate()
        regs.release(2)
        with pytest.raises(RuntimeError):
            regs.release()

    def test_must_exceed_logical(self):
        with pytest.raises(ValueError):
            PhysicalRegisterFile(total=32, logical=32)


class TestFetchQueue:
    def test_fifo_order(self):
        queue = FetchQueue(capacity=4)
        first, second = make_inst(0), make_inst(1)
        queue.push(first)
        queue.push(second)
        assert queue.peek() is first
        assert queue.pop() is first
        assert queue.pop() is second

    def test_capacity(self):
        queue = FetchQueue(capacity=1)
        queue.push(make_inst(0))
        assert not queue.has_space
        with pytest.raises(RuntimeError):
            queue.push(make_inst(1))
