"""Tests for the branch-prediction substrate."""

import random

import pytest

from repro.branch import (
    BranchTargetBuffer,
    GsharePredictor,
    HybridPredictor,
    LocalHistoryPredictor,
    SaturatingCounter,
    build_predictor,
)
from repro.timing.tables import ADAPTIVE_ICACHE_CONFIGS, OPTIMIZED_ICACHE_CONFIGS


class TestSaturatingCounter:
    def test_initial_prediction_weakly_not_taken(self):
        assert SaturatingCounter().prediction is False

    def test_trains_toward_taken(self):
        counter = SaturatingCounter()
        counter.update(True)
        counter.update(True)
        assert counter.prediction is True

    def test_saturation(self):
        counter = SaturatingCounter()
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)


class TestGshare:
    def test_learns_a_strongly_biased_branch(self):
        predictor = GsharePredictor(history_bits=12, table_entries=4096)
        pc = 0x4000
        for _ in range(50):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_history_shifts(self):
        predictor = GsharePredictor(history_bits=4, table_entries=1024)
        predictor.update(0x100, True)
        predictor.update(0x100, False)
        assert predictor.history == 0b10

    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=4, table_entries=1000)


class TestLocalPredictor:
    def test_learns_an_alternating_pattern(self):
        predictor = LocalHistoryPredictor(history_bits=10, bht_entries=1024, pht_entries=1024)
        pc = 0x770
        outcome = True
        for _ in range(200):
            predictor.update(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
            outcome = not outcome
        assert correct >= 95

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=10, bht_entries=1000, pht_entries=1024)


class TestHybridPredictor:
    def test_builds_from_table2_geometry(self):
        for config in ADAPTIVE_ICACHE_CONFIGS + OPTIMIZED_ICACHE_CONFIGS:
            predictor = build_predictor(config.predictor)
            assert isinstance(predictor, HybridPredictor)

    def test_biased_branches_are_learned(self):
        predictor = build_predictor(ADAPTIVE_ICACHE_CONFIGS[0].predictor)
        rng = random.Random(7)
        branches = {0x1000 + i * 8: rng.random() < 0.5 for i in range(50)}
        # Train.
        for _ in range(40):
            for pc, direction in branches.items():
                predictor.predict_and_update(pc, direction)
        correct = 0
        total = 0
        for _ in range(10):
            for pc, direction in branches.items():
                total += 1
                if predictor.predict(pc) == direction:
                    correct += 1
                predictor.predict_and_update(pc, direction)
        assert correct / total > 0.97

    def test_accuracy_tracks_stats(self):
        predictor = build_predictor(ADAPTIVE_ICACHE_CONFIGS[0].predictor)
        for _ in range(20):
            predictor.predict_and_update(0x2000, True)
        assert predictor.stats.predictions == 20
        assert 0.0 <= predictor.stats.accuracy <= 1.0

    def test_larger_predictor_not_worse_on_many_branches(self):
        """More predictor capacity (Table 2 scaling) should not hurt accuracy
        on a branch population large enough to alias in the small tables."""
        rng = random.Random(3)
        branches = [(0x10000 + i * 4, rng.random() < 0.85) for i in range(3000)]
        small = build_predictor(ADAPTIVE_ICACHE_CONFIGS[0].predictor)
        large = build_predictor(ADAPTIVE_ICACHE_CONFIGS[-1].predictor)
        small_correct = large_correct = total = 0
        for _ in range(4):
            for pc, bias in branches:
                outcome = rng.random() < (0.95 if bias else 0.05)
                total += 1
                small_correct += small.predict_and_update(pc, outcome)
                large_correct += large.predict_and_update(pc, outcome)
        # With 3000 interleaved branches the global history is effectively
        # random, so neither predictor can do much better than its static
        # bias here; the point of the test is that both stay functional and
        # train without error on a large, heavily aliased population.
        assert small.stats.predictions == total
        assert large.stats.predictions == total
        assert small_correct / total > 0.3
        assert large_correct / total > 0.3


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=256, associativity=4)
        assert btb.lookup(0x4000) is None
        btb.update(0x4000, 0x8000)
        assert btb.lookup(0x4000) == 0x8000

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(entries=8, associativity=1)
        # Fill one set with conflicting branches.
        btb.update(0x0, 0x100)
        btb.update(0x0 + 8 * 4, 0x200)
        assert btb.lookup(0x0) is None or btb.lookup(0x0 + 8 * 4) == 0x200

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=4)
