"""Tests for the project-invariant static analyzer (``repro.checks``).

Four rule families, each with positive (violating) and negative (clean)
fixtures; the suppression machinery; the snapshot round-trip; and the
regression the subsystem exists for — adding a ``RunResult`` field without a
``FINGERPRINT_VERSION`` bump must fail the schema guard.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.checks import run_checks
from repro.checks.cli import main as checks_main
from repro.checks.contracts import Contract, check_contracts, contract_registry
from repro.checks.determinism import (
    DET_BUILTIN_HASH,
    DET_GLOBAL_RANDOM,
    DET_UNORDERED_ITER,
    DET_UNSEEDED_RANDOM,
    DET_WALLCLOCK,
)
from repro.checks.digest_purity import check_classification, load_classification
from repro.checks.registry import all_rules
from repro.checks.schema_guard import (
    SnapshotError,
    check_schema,
    current_schema,
    load_snapshot,
    update_snapshot,
)

DET_RULES = [
    DET_BUILTIN_HASH,
    DET_GLOBAL_RANDOM,
    DET_UNORDERED_ITER,
    DET_UNSEEDED_RANDOM,
    DET_WALLCLOCK,
]


def scan(tmp_path: Path, source: str, rules: list[str] | None = None):
    """Write *source* as a module and run the (source) rules over it."""
    module = tmp_path / "fixture.py"
    module.write_text(source, encoding="utf-8")
    report = run_checks(paths=[module], rule_ids=rules or DET_RULES)
    return report


def finding_rules(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------------------
# determinism lint: positive fixtures
# --------------------------------------------------------------------------


def test_global_random_call_flagged(tmp_path):
    report = scan(tmp_path, "import random\nx = random.randint(0, 3)\n")
    assert finding_rules(report) == [DET_GLOBAL_RANDOM]
    assert report.findings[0].line == 2


def test_global_random_from_import_flagged(tmp_path):
    report = scan(tmp_path, "from random import shuffle\nshuffle([1, 2])\n")
    assert finding_rules(report) == [DET_GLOBAL_RANDOM]


def test_unseeded_random_flagged(tmp_path):
    report = scan(tmp_path, "import random\nrng = random.Random()\n")
    assert finding_rules(report) == [DET_UNSEEDED_RANDOM]


def test_system_random_flagged(tmp_path):
    report = scan(tmp_path, "import random\nrng = random.SystemRandom()\n")
    assert finding_rules(report) == [DET_UNSEEDED_RANDOM]


def test_builtin_hash_flagged(tmp_path):
    report = scan(tmp_path, "seed = hash('gcc')\n")
    assert finding_rules(report) == [DET_BUILTIN_HASH]


@pytest.mark.parametrize(
    "call",
    [
        "import time\nt = time.time()\n",
        "import os\nb = os.urandom(4)\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import uuid\nu = uuid.uuid4()\n",
    ],
)
def test_wallclock_flagged(tmp_path, call):
    report = scan(tmp_path, call)
    assert finding_rules(report) == [DET_WALLCLOCK]


@pytest.mark.parametrize(
    "loop",
    [
        "for x in {1, 2}:\n    pass\n",
        "names = {'a', 'b'}\nfor n in names:\n    pass\n",
        "values = [v for v in set([1, 2])]\n",
        "import glob\nfor p in glob.glob('*.json'):\n    pass\n",
        "import os\nfor p in os.listdir('.'):\n    pass\n",
        "from pathlib import Path\nfor p in Path('.').glob('*'):\n    pass\n",
    ],
)
def test_unordered_iteration_flagged(tmp_path, loop):
    report = scan(tmp_path, loop)
    assert DET_UNORDERED_ITER in finding_rules(report)


# --------------------------------------------------------------------------
# determinism lint: negative fixtures
# --------------------------------------------------------------------------


def test_seeded_random_clean(tmp_path):
    report = scan(
        tmp_path,
        "import random\nimport zlib\n"
        "rng = random.Random(7 ^ zlib.crc32(b'gcc'))\nx = rng.randint(0, 3)\n",
    )
    assert report.ok


def test_perf_counter_clean(tmp_path):
    # Duration measurement is legitimate; only absolute wall-clock is flagged.
    report = scan(tmp_path, "import time\nt = time.perf_counter()\n")
    assert report.ok


def test_sorted_iteration_clean(tmp_path):
    report = scan(
        tmp_path,
        "import glob\n"
        "for p in sorted(glob.glob('*.json')):\n    pass\n"
        "for x in sorted({1, 2}):\n    pass\n",
    )
    assert report.ok


def test_order_insensitive_consumers_clean(tmp_path):
    report = scan(
        tmp_path,
        "names = {'a', 'b'}\n"
        "total = sum(1 for _ in names)\n"
        "best = min(x for x in {3, 1})\n"
        "ordered = sorted(x + 1 for x in set([1, 2]))\n"
        "present = any(x > 1 for x in {1, 2})\n",
    )
    assert report.ok


def test_membership_test_clean(tmp_path):
    report = scan(tmp_path, "allowed = {'a', 'b'}\nok = 'a' in allowed\n")
    assert report.ok


def test_method_named_like_rng_clean(tmp_path):
    # self._rng.random() is an *instance* method, not the module-level RNG.
    report = scan(
        tmp_path,
        "class T:\n"
        "    def __init__(self, rng):\n"
        "        self._rng = rng\n"
        "    def draw(self):\n"
        "        return self._rng.random()\n",
    )
    assert report.ok


# --------------------------------------------------------------------------
# suppressions
# --------------------------------------------------------------------------


def test_suppression_same_line(tmp_path):
    report = scan(
        tmp_path,
        "seed = hash('x')  # repro: allow(det-builtin-hash) — fixture reason\n",
    )
    assert report.ok
    assert report.suppressed == 1


def test_suppression_previous_line(tmp_path):
    report = scan(
        tmp_path,
        "# repro: allow(det-builtin-hash) — fixture reason\nseed = hash('x')\n",
    )
    assert report.ok
    assert report.suppressed == 1


def test_suppression_multiple_rules(tmp_path):
    report = scan(
        tmp_path,
        "import time\n"
        "# repro: allow(det-builtin-hash, det-wallclock) — fixture reason\n"
        "seed = hash('x') + int(time.time())\n",
    )
    assert report.ok
    assert report.suppressed == 2


def test_suppression_without_reason_is_malformed(tmp_path):
    report = scan(tmp_path, "seed = hash('x')  # repro: allow(det-builtin-hash)\n")
    rules = finding_rules(report)
    assert "checks-malformed-suppression" in rules
    assert DET_BUILTIN_HASH in rules  # the malformed allow suppresses nothing


def test_suppression_unknown_rule_is_malformed(tmp_path):
    report = scan(
        tmp_path, "x = 1  # repro: allow(no-such-rule) — reason\n"
    )
    assert finding_rules(report) == ["checks-malformed-suppression"]


def test_unused_suppression_flagged(tmp_path):
    report = scan(
        tmp_path, "# repro: allow(det-builtin-hash) — stale reason\nx = 1\n"
    )
    assert finding_rules(report) == ["checks-unused-suppression"]


def test_unused_suppression_not_flagged_for_inactive_rule(tmp_path):
    # A --rule subset must not flag allows whose rule never ran.
    module = tmp_path / "fixture.py"
    module.write_text(
        "# repro: allow(det-builtin-hash) — stale reason\nx = 1\n", encoding="utf-8"
    )
    report = run_checks(paths=[module], rule_ids=[DET_WALLCLOCK])
    assert report.ok


def test_suppression_does_not_leak_to_other_lines(tmp_path):
    report = scan(
        tmp_path,
        "# repro: allow(det-builtin-hash) — fixture reason\n"
        "seed = hash('x')\n"
        "other = hash('y')\n",
    )
    assert finding_rules(report) == [DET_BUILTIN_HASH]
    assert report.findings[0].line == 3


# --------------------------------------------------------------------------
# fingerprint-schema guard
# --------------------------------------------------------------------------


def test_current_schema_sections():
    schema = current_schema()
    assert schema["fingerprint_version"] >= 5
    assert "profile" in schema["payload_keys"]
    assert "trace_seed" in schema["run_keys"]
    assert "workload" in schema["run_result_fields"]
    assert "compiled_trace_cache_hits" in schema["process_dependent_fields"]


def test_committed_snapshot_matches_live_schema():
    # The committed tree must be self-consistent: this is the CI guard.
    assert list(check_schema()) == []


def test_run_result_field_addition_without_bump_fails():
    schema = current_schema()
    mutated = dict(schema)
    mutated["run_result_fields"] = sorted(
        schema["run_result_fields"] + ["new_unclassified_counter"]
    )
    findings = list(check_schema(current=mutated))
    assert len(findings) == 1
    message = findings[0].message
    assert "without a FINGERPRINT_VERSION bump" in message
    assert "new_unclassified_counter" in message
    assert findings[0].path == "src/repro/engine/job.py"
    assert findings[0].line > 0


def test_job_field_addition_without_bump_fails():
    schema = current_schema()
    mutated = dict(schema)
    mutated["simulation_job_fields"] = sorted(
        schema["simulation_job_fields"] + ["new_knob"]
    )
    findings = list(check_schema(current=mutated))
    assert len(findings) == 1
    assert "new_knob" in findings[0].message


def test_version_bump_with_stale_snapshot_fails():
    schema = current_schema()
    mutated = dict(schema)
    mutated["fingerprint_version"] = schema["fingerprint_version"] + 1
    mutated["run_result_fields"] = sorted(
        schema["run_result_fields"] + ["new_counter"]
    )
    findings = list(check_schema(current=mutated))
    assert len(findings) == 1
    assert "--update-snapshots" in findings[0].message


def test_missing_snapshot_reported(tmp_path):
    findings = list(
        check_schema(snapshot_path=tmp_path / "never_recorded.json")
    )
    assert len(findings) == 1
    assert "no committed fingerprint-schema snapshot" in findings[0].message


def test_update_snapshot_round_trip(tmp_path):
    target = tmp_path / "snapshot.json"
    message = update_snapshot(snapshot_path=target)
    assert str(target) in message
    assert load_snapshot(target) == current_schema()
    assert list(check_schema(snapshot_path=target)) == []


def test_update_snapshot_refuses_change_without_bump(tmp_path):
    target = tmp_path / "snapshot.json"
    update_snapshot(snapshot_path=target)
    mutated = dict(current_schema())
    mutated["run_result_fields"] = sorted(
        mutated["run_result_fields"] + ["sneaky_counter"]
    )
    with pytest.raises(SnapshotError, match="bump it in src/repro/engine/job.py"):
        update_snapshot(current=mutated, snapshot_path=target)
    # The refused update must not have touched the snapshot.
    assert load_snapshot(target) == current_schema()


def test_update_snapshot_accepts_change_with_bump(tmp_path):
    target = tmp_path / "snapshot.json"
    update_snapshot(snapshot_path=target)
    mutated = dict(current_schema())
    mutated["fingerprint_version"] = mutated["fingerprint_version"] + 1
    mutated["run_result_fields"] = sorted(
        mutated["run_result_fields"] + ["declared_counter"]
    )
    update_snapshot(current=mutated, snapshot_path=target)
    assert load_snapshot(target) == mutated
    assert list(check_schema(current=mutated, snapshot_path=target)) == []


def test_schema_guard_end_to_end_via_monkeypatch(monkeypatch):
    """The registered rule (as CI runs it) fails on an unbumped field add."""
    from repro.checks import schema_guard

    mutated = dict(current_schema())
    mutated["run_result_fields"] = sorted(
        mutated["run_result_fields"] + ["new_unclassified_counter"]
    )
    monkeypatch.setattr(schema_guard, "current_schema", lambda: mutated)
    report = run_checks(rule_ids=["schema-guard"])
    assert not report.ok
    assert finding_rules(report) == ["schema-guard"]


# --------------------------------------------------------------------------
# digest-purity audit
# --------------------------------------------------------------------------


def test_committed_classification_is_clean():
    assert list(check_classification()) == []


def test_unclassified_field_flagged():
    classification = load_classification()
    del classification["fetched"]
    findings = list(check_classification(classification))
    assert len(findings) == 1
    assert "not classified" in findings[0].message
    assert "'fetched'" in findings[0].message


def test_stale_classification_entry_flagged():
    classification = load_classification()
    classification["removed_counter"] = "energy"
    findings = list(check_classification(classification))
    assert any("stale entry" in finding.message for finding in findings)


def test_invalid_class_flagged():
    classification = load_classification()
    classification["fetched"] = "mystery"
    findings = list(check_classification(classification))
    assert any("valid classes" in finding.message for finding in findings)


def test_timing_field_misclassified_as_energy_flagged():
    classification = load_classification()
    classification["loads"] = "energy"
    findings = list(check_classification(classification))
    assert any(
        "in TIMING_DIGEST_FIELDS but classified" in finding.message
        for finding in findings
    )


def test_energy_field_misclassified_as_excluded_flagged():
    # An equality-participating, digest-hashed field claimed as excluded must
    # trip both the digest-membership and the compare= cross-checks.
    classification = load_classification()
    classification["fetched"] = "excluded"
    messages = [finding.message for finding in check_classification(classification)]
    assert any("hashed by the energy digest" in message for message in messages)
    assert any("participates in RunResult equality" in message for message in messages)


def test_excluded_field_misclassified_as_energy_flagged():
    classification = load_classification()
    classification["fast_forward_cycles"] = "energy"
    messages = [finding.message for finding in check_classification(classification)]
    assert any(
        "in FAST_PATH_OBSERVABILITY_FIELDS but classified" in message
        for message in messages
    )
    assert any("compare=False but classified" in message for message in messages)


def test_process_dependent_demotion_flagged():
    classification = load_classification()
    classification["compiled_trace_cache_hits"] = "excluded"
    messages = [finding.message for finding in check_classification(classification)]
    assert any(
        "in RunResult.PROCESS_DEPENDENT_FIELDS but classified" in message
        for message in messages
    )


# --------------------------------------------------------------------------
# serialization contracts
# --------------------------------------------------------------------------


def test_committed_contracts_hold():
    assert list(check_contracts()) == []


def test_contract_registry_covers_the_data_plane():
    names = {contract.name for contract in contract_registry()}
    for expected in (
        "repro.engine.job.SimulationJob",
        "repro.analysis.metrics.RunResult",
        "repro.workloads.characteristics.WorkloadProfile",
        "repro.scenarios.spec.ScenarioSpec",
    ):
        assert expected in names


@dataclasses.dataclass
class _MutableNoDict:
    value: int = 0


def test_unfrozen_contract_type_flagged():
    contract = Contract(
        name="tests.fixture._MutableNoDict",
        load=lambda: _MutableNoDict,
        example=_MutableNoDict,
        frozen=True,
        dict_round_trip=True,
    )
    messages = [finding.message for finding in check_contracts([contract])]
    assert any("@dataclass(frozen=True)" in message for message in messages)
    assert any("to_dict() and from_dict()" in message for message in messages)


@dataclasses.dataclass(frozen=True)
class _LossyRoundTrip:
    values: tuple = (1, 2)

    def to_dict(self):
        return {"values": list(self.values)}

    @classmethod
    def from_dict(cls, data):
        # Deliberately lossy: rebuilds a list where a tuple lived.
        return cls(values=list(data["values"]))


def test_lossy_round_trip_flagged():
    contract = Contract(
        name="tests.fixture._LossyRoundTrip",
        load=lambda: _LossyRoundTrip,
        example=_LossyRoundTrip,
        dict_round_trip=True,
        pickle_round_trip=False,
    )
    messages = [finding.message for finding in check_contracts([contract])]
    assert any("round-trip is lossy" in message for message in messages)


def test_non_dataclass_flagged():
    contract = Contract(
        name="tests.fixture.dict",
        load=lambda: dict,
        example=dict,
    )
    messages = [finding.message for finding in check_contracts([contract])]
    assert any("must be a dataclass" in message for message in messages)


# --------------------------------------------------------------------------
# runner + CLI + the committed-tree baseline
# --------------------------------------------------------------------------


def test_committed_tree_has_zero_findings():
    """The baseline CI enforces: the whole of src/repro is finding-free."""
    report = run_checks()
    assert report.ok, report.render()
    assert report.files_scanned > 90


def test_unknown_rule_id_rejected():
    with pytest.raises(KeyError, match="no-such-rule"):
        run_checks(rule_ids=["no-such-rule"])


def test_rule_registry_has_all_families():
    rules = all_rules()
    assert {
        "det-builtin-hash",
        "det-global-random",
        "det-unordered-iter",
        "det-unseeded-random",
        "det-wallclock",
        "digest-purity",
        "schema-guard",
        "serialization-contract",
    } <= set(rules)


def test_cli_clean_tree_exits_zero(capsys):
    assert checks_main([]) == 0
    assert "OK: 0 finding(s)" in capsys.readouterr().out


def test_cli_violations_exit_one(tmp_path, capsys):
    module = tmp_path / "bad.py"
    module.write_text("seed = hash('x')\n", encoding="utf-8")
    assert checks_main([str(module)]) == 1
    assert "det-builtin-hash" in capsys.readouterr().out


def test_cli_json_report(tmp_path, capsys):
    module = tmp_path / "bad.py"
    module.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert checks_main(["--json", str(module)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == DET_WALLCLOCK
    assert payload["findings"][0]["line"] == 2


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "schema-guard" in out
    assert "det-unordered-iter" in out


def test_cli_unknown_rule_exits_two(capsys):
    assert checks_main(["--rule", "no-such-rule"]) == 2


def test_cli_rule_subset_runs_only_selected(tmp_path, capsys):
    module = tmp_path / "bad.py"
    module.write_text("import time\nt = time.time()\nseed = hash('x')\n")
    assert checks_main(["--rule", DET_BUILTIN_HASH, str(module)]) == 1
    out = capsys.readouterr().out
    assert "det-builtin-hash" in out
    assert "det-wallclock" not in out


def test_cli_update_snapshots_refusal_exits_two(monkeypatch, capsys):
    from repro.checks import schema_guard

    mutated = dict(current_schema())
    mutated["run_result_fields"] = sorted(
        mutated["run_result_fields"] + ["sneaky_counter"]
    )
    monkeypatch.setattr(schema_guard, "current_schema", lambda: mutated)
    assert checks_main(["--update-snapshots"]) == 2
    assert "refusing to update" in capsys.readouterr().out
