"""Equivalence properties of the compiled flat-array trace fast path.

The compiled structure-of-arrays form must be a pure representation change:
for any workload the columns replay an instruction stream byte-identical to
what the object generator produces, and the observation-only fast-path
counters must never leak into a result digest.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import RunResult
from repro.engine import DEFAULT_TRACE_SEED, SimulationJob, SpecKind, run_job
from repro.isa.registers import NO_REGISTER
from repro.scenarios.archetypes import ARCHETYPES
from repro.scenarios.spec import ScenarioSpec
from repro.workloads import full_suite, get_workload
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.trace_cache import CompiledTrace

from tests.golden_digests import (
    FAST_PATH_OBSERVABILITY_FIELDS,
    energy_digest,
    result_digest,
)

#: Both trace seeds the equivalence property is checked under: the engine
#: default and an arbitrary second seed, so the property does not hold by
#: accident of one stream.
SEEDS = (DEFAULT_TRACE_SEED, 97)

#: Instructions compared per (profile, seed) pair.
WINDOW = 1_000


def assert_columns_match_generator(profile, seed: int, count: int = WINDOW) -> None:
    """The compiled columns replay *count* instructions bit-identically."""
    fresh = SyntheticTraceGenerator(profile, seed=seed).generate(count)
    compiled = CompiledTrace(
        iter(SyntheticTraceGenerator(profile, seed=seed).generate(count))
    )
    available = compiled.ensure(count)
    assert available == count
    rebuilt = [compiled.instruction_at(index) for index in range(count)]
    assert rebuilt == fresh
    # Column-level invariants the frontend's index fetch relies on.
    for index, inst in enumerate(fresh):
        assert compiled.seq[index] == inst.seq
        assert compiled.pc[index] == inst.pc
        if inst.dest is None:
            assert compiled.dest[index] == NO_REGISTER
        if not inst.sources:
            assert compiled.src0[index] == NO_REGISTER
            assert compiled.src1[index] == NO_REGISTER


class TestPaperSuiteEquivalence:
    @pytest.mark.parametrize("profile", full_suite(), ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiled_trace_replays_generator_stream(self, profile, seed):
        assert_columns_match_generator(profile, seed)


class TestArchetypeEquivalence:
    @pytest.mark.parametrize("kind", sorted(ARCHETYPES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_archetype_profiles_compile_identically(self, kind, seed):
        spec = ScenarioSpec(
            name=f"compiled-prop-{kind}",
            family="archetype",
            description="compiled-trace equivalence property",
            overrides=ARCHETYPES[kind](),
        )
        assert_columns_match_generator(spec.build_profile(), seed)


class TestExhaustionAndRebuild:
    def test_finite_stream_exhausts_cleanly(self):
        profile = get_workload("gcc")
        stream = SyntheticTraceGenerator(profile, seed=5).generate(120)
        compiled = CompiledTrace(iter(stream))
        assert compiled.ensure(500) == 120
        assert compiled.exhausted
        assert [compiled.instruction_at(i) for i in range(120)] == stream

    def test_keep_objects_serves_original_instances(self):
        profile = get_workload("em3d")
        stream = SyntheticTraceGenerator(profile, seed=8).generate(200)
        compiled = CompiledTrace(iter(stream), keep_objects=True)
        compiled.ensure(200)
        assert all(compiled.instruction_at(i) is stream[i] for i in range(200))


class TestCounterSchemaCompatibility:
    """Observation-only fast-path counters: defaulted fields, digest-inert."""

    def run_result(self) -> RunResult:
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_200,
            warmup=800,
        )
        return run_job(job)

    def test_old_schema_json_still_deserialises(self):
        result = self.run_result()
        data = result.to_dict()
        for name in FAST_PATH_OBSERVABILITY_FIELDS:
            assert name in data
            del data[name]
        revived = RunResult.from_dict(data)
        for name in FAST_PATH_OBSERVABILITY_FIELDS:
            assert getattr(revived, name) == 0
        # Every non-counter field survives the round trip.
        revived_data = revived.to_dict()
        for name, value in data.items():
            assert revived_data[name] == value

    def test_digests_invariant_under_counter_mutation(self):
        result = self.run_result()
        timing_before = result_digest(result)
        energy_before = energy_digest(result)
        for offset, name in enumerate(sorted(FAST_PATH_OBSERVABILITY_FIELDS)):
            setattr(result, name, 10_000 + offset)
        assert result_digest(result) == timing_before
        assert energy_digest(result) == energy_before

    def test_counters_do_not_affect_equality(self):
        result = self.run_result()
        other = self.run_result()
        assert result == other
        other.horizon_skipped_edges += 1
        other.fast_forward_cycles += 7
        assert result == other  # compare=False fields
