"""The committed CLI reference must match the live argument parsers."""

from __future__ import annotations

from repro.cli_reference import (
    PARSER_BUILDERS,
    default_output_path,
    load_parsers,
    main,
    render_reference,
)


def test_committed_reference_is_current():
    """docs/CLI.md byte-matches a fresh render of the live parsers."""
    path = default_output_path()
    assert path.exists(), (
        "docs/CLI.md is missing; generate it with "
        "`python -m repro.cli_reference --write`"
    )
    committed = path.read_text(encoding="utf-8")
    assert committed == render_reference(), (
        "docs/CLI.md is stale; regenerate it with "
        "`python -m repro.cli_reference --write`"
    )


def test_every_registered_builder_produces_its_entrypoint_parser():
    parsers = load_parsers()
    assert len(parsers) == len(PARSER_BUILDERS)
    for module_name, parser in zip(sorted(PARSER_BUILDERS), parsers):
        assert parser.prog == f"python -m {module_name}"


def test_render_is_deterministic():
    assert render_reference() == render_reference()


def test_reference_covers_fabric_surface():
    """The distributed-fabric CLI surface is documented."""
    text = render_reference()
    for needle in (
        "`python -m repro.engine merge`",
        "`python -m repro.engine inspect`",
        "--shard K/N",
        "--resume",
    ):
        assert needle in text


def test_check_mode_detects_stale_copy(tmp_path, capsys):
    target = tmp_path / "CLI.md"
    assert main(["--write", "--output", str(target)]) == 0
    assert main(["--check", "--output", str(target)]) == 0
    target.write_text("stale\n", encoding="utf-8")
    assert main(["--check", "--output", str(target)]) == 1
    captured = capsys.readouterr()
    assert "stale" in captured.err
