"""Tests for the parallel experiment engine (jobs, executors, cache)."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.metrics import RunResult
from repro.analysis.sweep import (
    compare_workload,
    compare_workloads,
    program_adaptive_search,
    run_synchronous,
)
from repro.core.configuration import AdaptiveConfigIndices, best_overall_synchronous_spec
from repro.core.processor import MCDProcessor
from repro.engine import (
    ExperimentEngine,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    SimulationJob,
    SpecKind,
    make_engine,
    make_trace,
    run_job,
)
from repro.workloads import PhaseSpec, WorkloadProfile, full_suite


@pytest.fixture(scope="module")
def quick_profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="engine-quick", suite="test",
        code_footprint_kb=4.0, inner_window_kb=2.0,
        data_footprint_kb=48.0, hot_data_kb=12.0,
        simulation_window=1_000,
    )


def _jobs(profile: WorkloadProfile) -> list[SimulationJob]:
    common = dict(profile=profile, window=700, warmup=1200)
    return [
        SimulationJob(spec_kind=SpecKind.BEST_SYNCHRONOUS, **common),
        SimulationJob(
            spec_kind=SpecKind.ADAPTIVE, indices=AdaptiveConfigIndices(1, 0, 16, 16), **common
        ),
        SimulationJob(
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            **common,
        ),
        SimulationJob(
            spec_kind=SpecKind.SYNCHRONOUS, indices=AdaptiveConfigIndices(2, 1, 32, 16), **common
        ),
    ]


class TestSerialization:
    def test_phase_spec_pickle_roundtrip(self):
        phase = PhaseSpec(length=500, overrides={"load_fraction": 0.3})
        clone = pickle.loads(pickle.dumps(phase))
        assert clone == phase
        assert dict(clone.overrides) == {"load_fraction": 0.3}

    def test_every_suite_profile_is_picklable(self):
        for profile in full_suite():
            clone = pickle.loads(pickle.dumps(profile))
            assert clone == profile

    def test_workload_profile_dict_roundtrip(self):
        profile = WorkloadProfile(
            name="rt", suite="test",
            phases=(PhaseSpec(length=400, overrides={"fp_fraction": 0.5}),),
        )
        assert WorkloadProfile.from_dict(profile.to_dict()) == profile

    def test_indices_key_roundtrip(self):
        indices = AdaptiveConfigIndices(2, 3, 48, 32)
        assert AdaptiveConfigIndices.from_key(indices.describe()) == indices
        with pytest.raises(ValueError):
            AdaptiveConfigIndices.from_key("not/a/key")

    def test_run_result_dict_roundtrip(self, quick_profile):
        result = run_job(_jobs(quick_profile)[2])  # phase-adaptive: has changes
        assert result.configuration_changes
        assert RunResult.from_dict(result.to_dict()) == result


class TestFingerprint:
    def test_stable_across_equal_jobs(self, quick_profile):
        a, b = _jobs(quick_profile)[0], _jobs(quick_profile)[0]
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_resolved_defaults_share_fingerprint(self, quick_profile):
        implicit = SimulationJob(profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS)
        explicit = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=quick_profile.simulation_window,
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_equivalent_recipes_share_fingerprint(self, quick_profile):
        # The fingerprint hashes the fully built MachineSpec, so different
        # recipes for the same machine dedup against each other.
        implicit_base = SimulationJob(profile=quick_profile, spec_kind=SpecKind.ADAPTIVE)
        explicit_base = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.ADAPTIVE,
            indices=AdaptiveConfigIndices(0, 0, 16, 16),
        )
        assert implicit_base.fingerprint() == explicit_base.fingerprint()

        best = SimulationJob(profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS)
        explicit_best = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.SYNCHRONOUS,
            indices=best.build_spec().indices,
        )
        assert best.fingerprint() == explicit_best.fingerprint()

    def test_sensitive_to_every_dimension(self, quick_profile):
        base = SimulationJob(profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS)
        variants = [
            SimulationJob(profile=quick_profile, spec_kind=SpecKind.BASE_ADAPTIVE),
            SimulationJob(
                profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS, window=555
            ),
            SimulationJob(
                profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS, trace_seed=7
            ),
            SimulationJob(
                profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS, seed=3
            ),
            SimulationJob(
                profile=quick_profile.with_overrides(load_fraction=0.30),
                spec_kind=SpecKind.BEST_SYNCHRONOUS,
            ),
        ]
        fingerprints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(fingerprints) == len(variants) + 1

    def test_spec_overrides_change_fingerprint_and_spec(self, quick_profile):
        base = SimulationJob(profile=quick_profile, spec_kind=SpecKind.ADAPTIVE)
        shallow = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.ADAPTIVE,
            spec_overrides={"mispredict_front_end_cycles": 9, "mispredict_integer_cycles": 7},
        )
        assert base.fingerprint() != shallow.fingerprint()
        assert shallow.build_spec().mispredict_front_end_cycles == 9
        assert base.build_spec().mispredict_front_end_cycles == 10
        with pytest.raises(ValueError):
            SimulationJob(
                profile=quick_profile,
                spec_kind=SpecKind.ADAPTIVE,
                spec_overrides={"not_a_field": 1},
            )

    def test_phase_adaptive_requires_adaptive_spec(self, quick_profile):
        with pytest.raises(ValueError):
            SimulationJob(
                profile=quick_profile,
                spec_kind=SpecKind.SYNCHRONOUS,
                indices=AdaptiveConfigIndices(),
                phase_adaptive=True,
            )

    def test_timing_uncertainty_knobs_change_fingerprint(self, quick_profile):
        base = SimulationJob(profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS)
        jittered = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            jitter_fraction=0.05,
        )
        windowed = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            sync_window_fraction=0.45,
        )
        fingerprints = {base.fingerprint(), jittered.fingerprint(), windowed.fingerprint()}
        assert len(fingerprints) == 3

    def test_default_sync_window_shares_fingerprint_with_explicit(self, quick_profile):
        implicit = SimulationJob(profile=quick_profile, spec_kind=SpecKind.BEST_SYNCHRONOUS)
        explicit = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            sync_window_fraction=0.3,
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_control_overrides_resolve_and_fingerprint(self, quick_profile):
        base = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
        )
        overridden = SimulationJob(
            profile=quick_profile,
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            control_overrides={"interval_instructions": 777, "cache_hysteresis": 0.02},
        )
        control = overridden.resolved_control()
        assert control.interval_instructions == 777
        assert control.cache_hysteresis == 0.02
        # Untouched fields keep the window-scaled defaults.
        assert control.pll_interval_scaled == base.resolved_control().pll_interval_scaled
        assert base.fingerprint() != overridden.fingerprint()

    def test_knob_validation(self, quick_profile):
        with pytest.raises(ValueError):
            SimulationJob(profile=quick_profile, jitter_fraction=0.5)
        with pytest.raises(ValueError):
            SimulationJob(profile=quick_profile, sync_window_fraction=1.0)
        with pytest.raises(ValueError):  # overrides without phase-adaptive control
            SimulationJob(
                profile=quick_profile,
                control_overrides={"interval_instructions": 500},
            )
        with pytest.raises(ValueError):  # unknown control field
            SimulationJob(
                profile=quick_profile,
                spec_kind=SpecKind.BASE_ADAPTIVE,
                phase_adaptive=True,
                control_overrides={"not_a_knob": 1},
            )


class TestExecutors:
    def test_parallel_matches_serial(self, quick_profile):
        jobs = _jobs(quick_profile)
        serial = SerialExecutor().run_jobs(jobs, run_job)
        parallel = ParallelExecutor(max_workers=2).run_jobs(jobs, run_job)
        assert serial == parallel

    def test_parallel_single_worker_falls_back(self, quick_profile):
        jobs = _jobs(quick_profile)[:1]
        assert ParallelExecutor(max_workers=1).run_jobs(jobs, run_job) == [run_job(jobs[0])]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)


def _counting_engine(executor=None, cache=None):
    calls = []

    def counting_runner(job):
        calls.append(job.fingerprint())
        return run_job(job)

    engine = ExperimentEngine(
        executor if executor is not None else SerialExecutor(),
        cache if cache is not None else ResultCache(),
        runner=counting_runner,
    )
    return engine, calls


class TestEngineAndCache:
    def test_cache_hit_skips_resimulation_and_matches(self, quick_profile):
        engine, calls = _counting_engine()
        job = _jobs(quick_profile)[1]
        first = engine.run(job)
        second = engine.run(job)
        assert len(calls) == 1
        assert first == second
        assert first is not second  # callers must not share a mutable result
        assert engine.stats.cache_hits == 1
        assert engine.stats.simulations == 1

    def test_batch_duplicates_simulated_once(self, quick_profile):
        engine, calls = _counting_engine()
        job = _jobs(quick_profile)[0]
        results = engine.run_all([job, job, job])
        assert len(calls) == 1
        assert results[0] == results[1] == results[2]
        assert results[0] is not results[1]
        assert engine.stats.batch_duplicates == 2

    def test_disk_cache_survives_engine_restart(self, quick_profile, tmp_path):
        job = _jobs(quick_profile)[3]
        first_engine = ExperimentEngine(SerialExecutor(), ResultCache(tmp_path))
        original = first_engine.run(job)

        engine, calls = _counting_engine(cache=ResultCache(tmp_path))
        restored = engine.run(job)
        assert not calls  # served from disk, no simulation
        assert restored == original
        assert engine.cache.stats.disk_hits == 1

    def test_truncated_disk_entry_is_not_a_member_and_misses(self, quick_profile, tmp_path):
        """A corrupt disk file must answer ``in`` and ``get`` consistently."""
        job = _jobs(quick_profile)[0]
        fingerprint = job.fingerprint()
        writer = ResultCache(tmp_path)
        writer.put(fingerprint, run_job(job))

        path = tmp_path / f"{fingerprint}.json"
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # truncated mid-write JSON

        fresh = ResultCache(tmp_path)
        assert fingerprint not in fresh
        assert fresh.get(fingerprint) is None
        assert fresh.stats.misses == 1

    def test_valid_disk_entry_is_a_member(self, quick_profile, tmp_path):
        job = _jobs(quick_profile)[0]
        fingerprint = job.fingerprint()
        ResultCache(tmp_path).put(fingerprint, run_job(job))
        fresh = ResultCache(tmp_path)
        assert fingerprint in fresh
        assert fresh.get(fingerprint) is not None

    def test_stale_temp_files_reaped_on_init(self, tmp_path):
        """A process killed between tempfile write and os.replace leaves
        .tmp-* litter; an old orphan is reaped when the cache comes up."""
        import os

        stale = tmp_path / ".tmp-orphan.json"
        stale.write_text('{"partial": tru')
        old = 1_000_000_000  # well past STALE_TEMP_AGE_SECONDS ago
        os.utime(stale, (old, old))
        fresh_temp = tmp_path / ".tmp-live.json"
        fresh_temp.write_text('{"partial": tru')  # a live concurrent writer

        ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh_temp.exists()  # age guard spares in-flight writes

    def test_clear_reaps_all_temp_files_and_keeps_entries(self, quick_profile, tmp_path):
        job = _jobs(quick_profile)[0]
        cache = ResultCache(tmp_path)
        cache.put(job.fingerprint(), run_job(job))
        litter = tmp_path / ".tmp-fresh.json"
        litter.write_text("{")

        cache.clear()
        assert not litter.exists()
        assert len(cache) == 0
        # Committed disk entries survive and are still servable.
        assert cache.get(job.fingerprint()) is not None

    def test_make_engine_knobs(self, tmp_path):
        serial = make_engine(workers=1, use_cache=False)
        assert isinstance(serial.executor, SerialExecutor)
        assert serial.cache is None
        parallel = make_engine(workers=3, cache_dir=tmp_path)
        assert isinstance(parallel.executor, ParallelExecutor)
        assert parallel.executor.workers == 3
        assert parallel.cache.directory == tmp_path


class TestSweepThroughEngine:
    def test_run_synchronous_matches_direct_processor_path(self, quick_profile):
        engine = ExperimentEngine(SerialExecutor(), ResultCache())
        via_engine = run_synchronous(quick_profile, window=700, warmup=1200, engine=engine)

        processor = MCDProcessor(
            best_overall_synchronous_spec(), control=None, phase_adaptive=False, seed=0
        )
        trace = make_trace(quick_profile)
        direct = processor.run(
            trace.instructions(),
            max_instructions=700,
            warmup_instructions=1200,
            workload_name=quick_profile.name,
        )
        assert via_engine == direct

    def test_factored_search_agrees_with_direct_call_path(self, quick_profile):
        engine = ExperimentEngine(SerialExecutor(), ResultCache())
        sweep = program_adaptive_search(
            quick_profile, window=700, warmup=1200, engine=engine
        )
        # Re-simulate the winner outside the engine, the way the seed code
        # invoked the processor directly.
        from repro.core.configuration import adaptive_mcd_spec

        processor = MCDProcessor(
            adaptive_mcd_spec(sweep.best_indices, use_b_partitions=False),
            control=None,
            phase_adaptive=False,
            seed=0,
        )
        trace = make_trace(quick_profile)
        direct = processor.run(
            trace.instructions(),
            max_instructions=700,
            warmup_instructions=1200,
            workload_name=quick_profile.name,
        )
        assert sweep.best_result == direct
        best_time = sweep.best_result.execution_time_ps
        assert all(
            best_time <= result.execution_time_ps for result in sweep.evaluated.values()
        )

    def test_serial_and_parallel_sweeps_identical(self, quick_profile):
        serial = compare_workloads(
            [quick_profile],
            window=700,
            warmup=1200,
            engine=ExperimentEngine(SerialExecutor(), ResultCache()),
        )[0]
        parallel = compare_workloads(
            [quick_profile],
            window=700,
            warmup=1200,
            engine=ExperimentEngine(ParallelExecutor(max_workers=2), ResultCache()),
        )[0]
        assert serial.synchronous == parallel.synchronous
        assert serial.program_adaptive == parallel.program_adaptive
        assert serial.phase_adaptive == parallel.phase_adaptive
        assert serial.program_best_indices == parallel.program_best_indices

    def test_batched_comparison_matches_single(self, quick_profile):
        single = compare_workload(
            quick_profile,
            window=700,
            warmup=1200,
            engine=ExperimentEngine(SerialExecutor(), ResultCache()),
        )
        batched = compare_workloads(
            [quick_profile],
            window=700,
            warmup=1200,
            engine=ExperimentEngine(SerialExecutor(), ResultCache()),
        )[0]
        assert single.synchronous == batched.synchronous
        assert single.program_adaptive == batched.program_adaptive
        assert single.phase_adaptive == batched.phase_adaptive

    def test_jittered_sweep_serial_and_parallel_identical(self, quick_profile):
        """Acceptance: a jittered sweep through the engine is bit-identical
        whichever executor carries it (and reproducible per submission)."""
        jobs = [
            SimulationJob(
                profile=quick_profile,
                spec_kind=SpecKind.BEST_SYNCHRONOUS,
                window=700,
                warmup=1200,
                jitter_fraction=0.05,
            ),
            SimulationJob(
                profile=quick_profile,
                spec_kind=SpecKind.BASE_ADAPTIVE,
                use_b_partitions=True,
                phase_adaptive=True,
                window=700,
                warmup=1200,
                jitter_fraction=0.05,
                sync_window_fraction=0.45,
            ),
        ]
        serial = ExperimentEngine(SerialExecutor(), ResultCache()).run_all(jobs)
        parallel = ExperimentEngine(ParallelExecutor(max_workers=2), ResultCache()).run_all(
            jobs
        )
        assert serial == parallel
        # A second serial submission through a fresh engine reproduces too.
        assert ExperimentEngine(SerialExecutor(), ResultCache()).run_all(jobs) == serial

    def test_search_reuses_cache_across_drivers(self, quick_profile):
        engine, calls = _counting_engine()
        program_adaptive_search(quick_profile, window=700, warmup=1200, engine=engine)
        simulated_once = len(calls)
        # The comparison driver re-submits the same candidate jobs; only the
        # synchronous baseline and the phase-adaptive run are new.
        compare_workload(quick_profile, window=700, warmup=1200, engine=engine)
        assert len(calls) == simulated_once + 2
