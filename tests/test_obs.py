"""Tests for the telemetry subsystem (:mod:`repro.obs`).

The load-bearing property is at the top: tracing is observation-only, so a
traced run and an untraced run of the same job produce *bit-identical*
result digests — the golden values pinned in ``tests/test_golden_values.py``
must hold with a recorder attached.  The rest covers the recorder machinery
(ring bounds, deterministic sampling, JSONL schema round-trip), the job
integration (fingerprint exclusion), the engine metrics accumulator, the
shared logging setup and the ``python -m repro.obs`` CLI.
"""

from __future__ import annotations

import json
import logging

import pytest

from golden_digests import (
    ENERGY_GOLDEN_DIGESTS,
    energy_digest,
    golden_jobs,
    result_digest,
)
from repro.engine import SimulationJob, TraceOptions, canonical_payload, run_job
from repro.engine.cache import CacheStats, ResultCache
from repro.obs.cli import main as obs_main
from repro.obs.events import (
    CONTROLLER_INTERVAL,
    EVENT_TYPES,
    HORIZON_SKIP,
    SYNC_PENALTY,
    TraceEvent,
    TraceSchemaError,
)
from repro.obs.logging import configure_logging
from repro.obs.metrics import EngineMetrics, Histogram
from repro.obs.recorder import (
    JsonlSink,
    RingBufferSink,
    TraceRecorder,
    read_trace,
    trace_header,
)
from repro.workloads import get_workload
from test_golden_values import GOLDEN_DIGESTS

#: Golden jobs re-run with a recorder attached: one phase-adaptive job per
#: workload (the controller hooks fire) plus a jittered one (the sync-penalty
#: and jittered fast-forward hooks fire).
_TRACED_GOLDEN_JOBS = (
    "gcc/phase_adaptive",
    "em3d/phase_adaptive",
    "gcc/phase_adaptive_jittered",
)


# ------------------------------------------------------------ bit-identity


@pytest.mark.parametrize("name", _TRACED_GOLDEN_JOBS)
def test_traced_run_matches_golden_timing_digest(name):
    """A recorder observing every event type must not move a golden digest."""
    ring = RingBufferSink(capacity=100_000)
    recorder = TraceRecorder([ring])
    job = golden_jobs()[name]
    result = run_job(job, recorder=recorder)
    assert result_digest(result) == GOLDEN_DIGESTS[name], (
        f"tracing changed the RunResult of {name}; instrumentation must be "
        "observation-only"
    )
    assert ring.events, "the traced golden job emitted no events at all"


def test_traced_run_matches_golden_energy_digest():
    name = "gcc/phase_adaptive"
    recorder = TraceRecorder([RingBufferSink(capacity=100_000)])
    result = run_job(golden_jobs()[name], recorder=recorder)
    assert energy_digest(result) == ENERGY_GOLDEN_DIGESTS[name]


def test_traced_and_untraced_runs_are_bit_identical(tmp_path):
    """Same job, one run traced to JSONL, one untraced: identical digests."""
    job = golden_jobs()["em3d/phase_adaptive"]
    untraced = run_job(job)
    sink = JsonlSink(tmp_path / "trace.jsonl")
    with TraceRecorder([sink]) as recorder:
        traced = run_job(job, recorder=recorder)
    assert result_digest(traced) == result_digest(untraced)
    assert energy_digest(traced) == energy_digest(untraced)
    _, events = read_trace(tmp_path / "trace.jsonl")
    assert events


# ------------------------------------------------------- job integration


def test_trace_options_do_not_change_the_fingerprint(tmp_path):
    profile = get_workload("gzip")
    plain = SimulationJob(profile=profile, window=800, warmup=800)
    traced = SimulationJob(
        profile=profile,
        window=800,
        warmup=800,
        trace=TraceOptions(path=str(tmp_path / "t.jsonl")),
    )
    assert plain.fingerprint() == traced.fingerprint()
    # payload() is the fingerprint input; the trace options must not appear.
    assert plain.payload() == traced.payload()
    assert str(tmp_path) not in json.dumps(canonical_payload(traced.payload()))


def test_job_trace_field_rejects_non_trace_options():
    with pytest.raises(TypeError):
        SimulationJob(profile=get_workload("gzip"), trace="trace.jsonl")


def test_runner_builds_recorder_from_job_trace_options(tmp_path):
    path = tmp_path / "job.trace.jsonl"
    job = SimulationJob(
        profile=get_workload("gzip"),
        window=400,
        warmup=400,
        phase_adaptive=True,
        trace=TraceOptions(path=str(path)),
    )
    run_job(job)
    meta, events = read_trace(path)
    assert meta["fingerprint"] == job.fingerprint()
    assert events, "a phase-adaptive run should emit at least one event"


def test_trace_options_validation():
    with pytest.raises(ValueError):
        TraceOptions(path="")
    with pytest.raises(ValueError):
        TraceOptions(path="t.jsonl", events=("no-such-event",))
    with pytest.raises(ValueError):
        TraceOptions(path="t.jsonl", sampling={"no-such-event": 2})
    with pytest.raises(ValueError):
        TraceOptions(path="t.jsonl", sampling={SYNC_PENALTY: 0})
    options = TraceOptions(
        path="t.jsonl", events=[CONTROLLER_INTERVAL], sampling={SYNC_PENALTY: "3"}
    )
    assert options.events == (CONTROLLER_INTERVAL,)
    assert options.sampling == {SYNC_PENALTY: 3}


# ------------------------------------------------------------- recorder


def test_ring_buffer_sink_is_bounded():
    ring = RingBufferSink(capacity=3)
    recorder = TraceRecorder([ring])
    for index in range(10):
        recorder.emit(SYNC_PENALTY, index, index, producer="integer")
    assert len(ring) == 3
    assert [event.time_ps for event in ring.events] == [7, 8, 9]
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_recorder_type_filter_and_counters():
    ring = RingBufferSink(capacity=100)
    recorder = TraceRecorder([ring], event_types=[CONTROLLER_INTERVAL])
    assert recorder.wants(CONTROLLER_INTERVAL)
    assert not recorder.wants(SYNC_PENALTY)
    recorder.emit(CONTROLLER_INTERVAL, 10, 1, structure="dcache")
    recorder.emit(SYNC_PENALTY, 20, 1, producer="integer")
    assert recorder.seen == {CONTROLLER_INTERVAL: 1}
    assert recorder.emitted == {CONTROLLER_INTERVAL: 1}
    assert len(ring) == 1
    with pytest.raises(ValueError):
        TraceRecorder([], event_types=["bogus"])


def test_sampling_is_deterministic_and_keeps_the_first_event():
    def emitted_times(stride):
        ring = RingBufferSink(capacity=100)
        recorder = TraceRecorder([ring], sampling={SYNC_PENALTY: stride})
        for index in range(10):
            recorder.emit(SYNC_PENALTY, index, index)
        return [event.time_ps for event in ring.events]

    # Keeps the 1st, (n+1)-th, ... event, counted in emission order.
    assert emitted_times(3) == [0, 3, 6, 9]
    # Identical inputs produce the identical sampled stream (no RNG/clock).
    assert emitted_times(3) == emitted_times(3)
    assert emitted_times(1) == list(range(10))
    with pytest.raises(ValueError):
        TraceRecorder([], sampling={SYNC_PENALTY: 0})
    with pytest.raises(ValueError):
        TraceRecorder([], sampling={"bogus": 2})


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path, meta={"target": "unit-test"})
    recorder = TraceRecorder([sink])
    recorder.emit(CONTROLLER_INTERVAL, 1000, 42, structure="dcache", best_index=1)
    recorder.emit(HORIZON_SKIP, 2000, 43, edges=7)
    recorder.close()
    meta, events = read_trace(path)
    assert meta == {"target": "unit-test"}
    assert [event.type for event in events] == [CONTROLLER_INTERVAL, HORIZON_SKIP]
    assert events[0].data == {"structure": "dcache", "best_index": 1}
    assert events[1].time_ps == 2000 and events[1].committed == 43


def test_read_trace_rejects_foreign_and_stale_files(tmp_path):
    not_a_trace = tmp_path / "other.json"
    not_a_trace.write_text('{"kind": "something-else"}\n')
    with pytest.raises(TraceSchemaError):
        read_trace(not_a_trace)

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TraceSchemaError):
        read_trace(empty)

    stale = tmp_path / "stale.jsonl"
    header = trace_header()
    header["schema"] = 999
    stale.write_text(json.dumps(header) + "\n")
    with pytest.raises(TraceSchemaError):
        read_trace(stale)

    malformed = tmp_path / "malformed.jsonl"
    malformed.write_text(
        json.dumps(trace_header()) + "\n" + '{"type": "bogus-event"}\n'
    )
    with pytest.raises(TraceSchemaError):
        read_trace(malformed)


def test_trace_event_validates_its_type():
    with pytest.raises(ValueError):
        TraceEvent(type="bogus", time_ps=0, committed=0)
    event = TraceEvent(type=SYNC_PENALTY, time_ps=5, committed=2, data={"a": 1})
    assert TraceEvent.from_dict(event.to_dict()) == event
    assert EVENT_TYPES  # the registry is non-empty and frozen
    with pytest.raises(AttributeError):
        event.type = CONTROLLER_INTERVAL  # frozen


# ------------------------------------------------------------- metrics


def test_histogram_statistics():
    histogram = Histogram()
    for value in (0.002, 0.02, 0.2, 2.0):
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(0.5555, rel=1e-3)
    assert histogram.min == 0.002 and histogram.max == 2.0
    # Bucket-resolution percentiles return a bucket's upper bound.
    assert histogram.percentile(0.5) in (0.03, 0.1)
    assert histogram.percentile(1.0) >= 2.0
    with pytest.raises(ValueError):
        histogram.percentile(0.0)
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 0.5))
    assert Histogram().percentile(0.5) == 0.0


def test_engine_metrics_accounting():
    metrics = EngineMetrics()
    assert metrics.summary_lines() == [
        "engine metrics: no executor work (all jobs cached or deduplicated)"
    ]
    metrics.record_job(1.0, 1.0)
    metrics.record_job(1.0, 2.0)
    metrics.record_batch(elapsed_seconds=2.0, workers=2)
    assert metrics.jobs_completed == 2
    assert metrics.batches == 1
    assert metrics.worker_utilization == pytest.approx(0.5)
    snapshot = metrics.to_dict()
    assert snapshot["jobs_completed"] == 2
    assert snapshot["job_seconds"]["count"] == 2
    lines = metrics.summary_lines()
    assert lines[0].startswith("engine metrics: 2 job(s) in 1 batch(es)")
    # Utilization is clamped at 100% even if busy time over-counts capacity.
    metrics.record_job(100.0, 0.0)
    assert metrics.worker_utilization == 1.0


def test_engine_populates_metrics():
    from repro.engine import ExperimentEngine, ResultCache, SerialExecutor

    engine = ExperimentEngine(SerialExecutor(), ResultCache())
    job = SimulationJob(profile=get_workload("gzip"), window=400, warmup=400)
    engine.run_all([job])
    assert engine.metrics.jobs_completed == 1
    assert engine.metrics.batches == 1
    # A warm re-run is served from the cache: no new executor work.
    engine.run_all([job])
    assert engine.metrics.jobs_completed == 1
    assert engine.cache.stats.hits >= 1


# -------------------------------------------------------------- cache stats


def test_cache_stats_describe_includes_merge_counters(tmp_path):
    stats = CacheStats(memory_hits=2, disk_hits=1, misses=3, stores=4)
    line = stats.describe()
    assert "3 hit(s) (2 memory, 1 disk)" in line
    assert "merged" not in line
    stats.merged_entries = 5
    assert "5 merged entr(ies)" in stats.describe()

    source = ResultCache(tmp_path / "src")
    destination = ResultCache(tmp_path / "dst")
    job = SimulationJob(profile=get_workload("gzip"), window=400, warmup=400)
    source.put(job.fingerprint(), run_job(job))
    destination.merge(tmp_path / "src")
    destination.merge(tmp_path / "src")  # second pass: all duplicates
    assert destination.stats.merged_entries == 1
    assert destination.stats.merge_duplicates == 1


# ------------------------------------------------------------------ logging


def test_configure_logging_is_idempotent():
    logger = configure_logging(verbosity=0)
    configure_logging(verbosity=0)
    flagged = [
        handler
        for handler in logger.handlers
        if getattr(handler, "_repro_obs_handler", False)
    ]
    assert len(flagged) == 1
    assert logger.level == logging.WARNING
    assert configure_logging(verbosity=1).level == logging.INFO
    assert configure_logging(verbosity=2).level == logging.DEBUG
    assert configure_logging(verbosity=-1).level == logging.ERROR
    assert configure_logging(verbosity=99).level == logging.DEBUG
    configure_logging(verbosity=0)  # restore the default for other tests


# ---------------------------------------------------------------------- CLI


@pytest.fixture(scope="module")
def cli_trace(tmp_path_factory):
    """One small traced CLI run shared by the rendering smoke tests."""
    path = tmp_path_factory.mktemp("obs") / "gzip.trace.jsonl"
    code = obs_main(
        [
            "trace",
            "gzip",
            "--window",
            "400",
            "--warmup",
            "400",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


def test_cli_trace_writes_a_readable_trace(cli_trace, capsys):
    meta, events = read_trace(cli_trace)
    assert meta["target"] == "gzip"
    assert meta["kind"] == "workload"
    assert events


def test_cli_summarize(cli_trace, capsys):
    assert obs_main(["summarize", str(cli_trace)]) == 0
    out = capsys.readouterr().out
    assert "event(s):" in out
    assert obs_main(["summarize", str(cli_trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["meta"]["target"] == "gzip"
    assert payload["event_counts"]


def test_cli_timeline(cli_trace, capsys):
    assert obs_main(["timeline", str(cli_trace)]) == 0
    out = capsys.readouterr().out
    assert "one column per controller interval" in out
    with pytest.raises(SystemExit):
        obs_main(["timeline", str(cli_trace), "--structure", "nope"])


def test_cli_diff(cli_trace, tmp_path, capsys):
    assert obs_main(["diff", str(cli_trace), str(cli_trace)]) == 0
    assert "traces are equivalent" in capsys.readouterr().out

    other = tmp_path / "other.jsonl"
    sink = JsonlSink(other, meta={"target": "synthetic"})
    with TraceRecorder([sink]) as recorder:
        recorder.emit(SYNC_PENALTY, 1, 1, producer="integer")
    assert obs_main(["diff", str(cli_trace), str(other)]) == 1


def test_cli_trace_sampling_and_event_filter(tmp_path, capsys):
    path = tmp_path / "sampled.jsonl"
    code = obs_main(
        [
            "trace",
            "gzip",
            "--window",
            "400",
            "--warmup",
            "400",
            "--out",
            str(path),
            "--events",
            f"{CONTROLLER_INTERVAL},{HORIZON_SKIP}",
            "--sample",
            f"{HORIZON_SKIP}=10",
        ]
    )
    assert code == 0
    _, events = read_trace(path)
    types = {event.type for event in events}
    assert types <= {CONTROLLER_INTERVAL, HORIZON_SKIP}
    out = capsys.readouterr().out
    assert "seen" in out  # the sampled type reports "N (of M seen)"


def test_cli_trace_rejects_unknown_target(capsys):
    with pytest.raises(KeyError):
        obs_main(["trace", "no-such-target", "--quick", "--out", "/tmp/x.jsonl"])
