"""Tests for the phase-adaptive control algorithms (Section 3 of the paper)."""

import pytest

from repro.caches import AccountingCache
from repro.clocks.time import ns_to_ps
from repro.core.controllers import (
    AdaptiveControlParams,
    CacheLevel,
    ILPTracker,
    PhaseAdaptiveCacheController,
    PhaseAdaptiveQueueController,
)
from repro.isa.registers import register_index
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS


def make_dcache_controller(interval=1000, hysteresis=0.0, consecutive=1):
    geometry_l1 = ADAPTIVE_DCACHE_CONFIGS[-1].l1
    geometry_l2 = ADAPTIVE_DCACHE_CONFIGS[-1].l2
    l1 = AccountingCache(geometry_l1, a_ways=1, b_enabled=True, name="L1D")
    l2 = AccountingCache(geometry_l2, a_ways=1, b_enabled=True, name="L2")
    controller = PhaseAdaptiveCacheController(
        name="dcache",
        levels=(
            CacheLevel(
                cache=l1,
                latencies=tuple(c.l1_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
            ),
            CacheLevel(
                cache=l2,
                latencies=tuple(c.l2_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
            ),
        ),
        frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_DCACHE_CONFIGS),
        beyond_last_level_ps=ns_to_ps(94.0),
        interval_instructions=interval,
        hysteresis=hysteresis,
        consecutive_decisions_required=consecutive,
    )
    return controller, l1, l2


class TestCacheController:
    def test_interval_accounting(self):
        controller, _, _ = make_dcache_controller(interval=100)
        assert not controller.note_committed(50)
        assert controller.note_committed(50)

    def test_small_working_set_prefers_smallest_config(self):
        controller, l1, _ = make_dcache_controller()
        # Everything hits in the MRU way: the fast, small configuration wins.
        for _ in range(50):
            for block in range(8):
                l1.access(0x1000 + block * 64)
        decision = controller.evaluate_interval()
        assert decision.best_index == 0

    def test_capacity_bound_working_set_prefers_larger_config(self):
        controller, l1, l2 = make_dcache_controller()
        sets = l1.num_sets
        # Four conflicting blocks per set, cycled repeatedly: with one way in
        # the A partition every re-touch is a B hit, while four ways would
        # capture them all.
        for _ in range(20):
            for way in range(4):
                for set_index in range(0, 64):
                    l1.access(0x1000 + set_index * 64 + way * sets * 64)
        decision = controller.evaluate_interval()
        assert decision.best_index >= 2

    def test_decision_resets_interval_counters(self):
        controller, l1, _ = make_dcache_controller()
        l1.access(0x100)
        controller.note_committed(10)
        controller.evaluate_interval()
        assert controller.instructions_in_interval == 0
        assert l1.interval_stats.accesses == 0

    def test_hysteresis_blocks_marginal_changes(self):
        def marginal_interval(l1):
            sets = l1.num_sets
            # Mostly A hits plus a sprinkle of B hits: a larger configuration
            # is slightly, but not decisively, cheaper.
            for _ in range(6):
                for set_index in range(64):
                    l1.access(0x1000 + set_index * 64)
            for _ in range(2):
                for set_index in range(20):
                    l1.access(0x1000 + set_index * 64 + sets * 64)
                for set_index in range(20):
                    l1.access(0x1000 + set_index * 64)

        eager_controller, eager_l1, _ = make_dcache_controller(hysteresis=0.0)
        marginal_interval(eager_l1)
        eager_decision = eager_controller.evaluate_interval()

        guarded_controller, guarded_l1, _ = make_dcache_controller(hysteresis=0.45)
        marginal_interval(guarded_l1)
        guarded_decision = guarded_controller.evaluate_interval()

        # Whatever the eager controller does, the strongly guarded one must
        # stay at the current configuration unless the win is overwhelming.
        assert guarded_decision.best_index == 0
        assert eager_decision.best_index >= guarded_decision.best_index

    def test_consecutive_decisions_required(self):
        controller, l1, l2 = make_dcache_controller(consecutive=2)
        sets = l1.num_sets

        def capacity_bound_interval():
            for _ in range(20):
                for way in range(4):
                    for set_index in range(64):
                        l1.access(0x1000 + set_index * 64 + way * sets * 64)

        capacity_bound_interval()
        first = controller.evaluate_interval()
        assert first.best_index == 0  # change deferred
        capacity_bound_interval()
        second = controller.evaluate_interval()
        assert second.best_index >= 2  # persistent need: change now allowed

    def test_force_reset_interval_clears_consecutive_streak(self):
        """A discarded interval must not count toward the decision streak:
        force_reset_interval clears the pending candidate and count, so the
        controller needs the full run of identical winners again."""
        controller, l1, l2 = make_dcache_controller(consecutive=2)
        sets = l1.num_sets

        def capacity_bound_interval():
            for _ in range(20):
                for way in range(4):
                    for set_index in range(64):
                        l1.access(0x1000 + set_index * 64 + way * sets * 64)

        capacity_bound_interval()
        first = controller.evaluate_interval()
        assert first.best_index == 0  # change deferred, streak at 1

        controller.force_reset_interval()
        assert controller._pending_candidate is None
        assert controller._pending_count == 0
        assert controller.instructions_in_interval == 0

        # After the discard the next identical winner is a *first* vote
        # again, so the change is still deferred...
        capacity_bound_interval()
        second = controller.evaluate_interval()
        assert second.best_index == 0
        # ...and only the following interval may commit it.
        capacity_bound_interval()
        third = controller.evaluate_interval()
        assert third.best_index >= 2

    def test_force_reset_interval_discards_interval_counters(self):
        controller, l1, _ = make_dcache_controller()
        l1.access(0x100)
        controller.note_committed(10)
        controller.force_reset_interval()
        assert controller.instructions_in_interval == 0
        assert l1.interval_stats.accesses == 0

    def test_costs_cover_every_configuration(self):
        controller, l1, _ = make_dcache_controller()
        l1.access(0x40)
        decision = controller.evaluate_interval()
        assert len(decision.costs_ps) == len(ADAPTIVE_DCACHE_CONFIGS)
        assert all(cost >= 0 for cost in decision.costs_ps)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseAdaptiveCacheController(
                name="broken",
                levels=(),
                frequencies_ghz=(1.0,),
                beyond_last_level_ps=0,
            )


class TestILPTracker:
    def _observe_chain(self, tracker, length, stride):
        """Feed a dependence chain where each op depends on the op *stride* back."""
        recent: list[int] = []
        for index in range(length):
            dest = register_index(f"r{8 + index % 20}")
            if len(recent) >= stride:
                sources = (recent[-stride],)
            else:
                sources = (register_index("r1"),)
            tracker.observe(dest, sources, tracked=True)
            recent.append(dest)

    def test_windows_complete_after_n_tracked_instructions(self):
        tracker = ILPTracker()
        self._observe_chain(tracker, 64, stride=4)
        assert tracker.all_windows_complete

    def test_serial_code_measures_low_ilp(self):
        tracker = ILPTracker()
        self._observe_chain(tracker, 64, stride=1)
        estimates = tracker.estimates()
        assert estimates[16] <= 2.0
        assert estimates[64] <= 2.0

    def test_parallel_code_measures_high_ilp(self):
        tracker = ILPTracker()
        self._observe_chain(tracker, 64, stride=20)
        estimates = tracker.estimates()
        assert estimates[64] >= 8.0

    def test_reset_clears_state(self):
        tracker = ILPTracker()
        self._observe_chain(tracker, 64, stride=1)
        tracker.reset()
        assert not tracker.all_windows_complete

    def test_timestamps_saturate_at_bit_width(self):
        tracker = ILPTracker()
        # A very long serial chain: the 4-bit tracker saturates at 15.
        self._observe_chain(tracker, 70, stride=1)
        estimates = tracker.estimates()
        assert estimates[16] >= 16 / 15 - 1e-9


class TestQueueController:
    def _run_windows(self, controller, stride, windows=4):
        decisions = []
        for _ in range(windows):
            recent: list[int] = []
            done = False
            while not done:
                dest = register_index(f"r{8 + len(recent) % 20}")
                if len(recent) >= stride:
                    sources = (recent[-stride],)
                else:
                    sources = (register_index("r1"),)
                done = controller.observe(dest, sources, tracked=True)
                recent.append(dest)
            decisions.append(controller.evaluate())
        return decisions

    def test_serial_code_keeps_16_entry_queue(self):
        controller = PhaseAdaptiveQueueController(name="int", initial_size=16)
        decisions = self._run_windows(controller, stride=2)
        assert all(d.best_size == 16 for d in decisions)

    def test_highly_parallel_code_grows_the_queue(self):
        controller = PhaseAdaptiveQueueController(name="int", initial_size=16)
        decisions = self._run_windows(controller, stride=40, windows=6)
        assert decisions[-1].best_size > 16

    def test_consecutive_decision_damping(self):
        controller = PhaseAdaptiveQueueController(
            name="int", initial_size=16, consecutive_decisions_required=3
        )
        decisions = self._run_windows(controller, stride=40, windows=2)
        # Not enough consecutive windows yet: stays at 16.
        assert all(d.best_size == 16 for d in decisions)

    def test_scores_scale_ilp_by_frequency(self):
        controller = PhaseAdaptiveQueueController(name="int", initial_size=16)
        decisions = self._run_windows(controller, stride=2, windows=1)
        scores = decisions[0].scores
        assert set(scores) == {16, 32, 48, 64}
        assert scores[16] >= scores[64]

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseAdaptiveQueueController(name="x", hysteresis=0.9)
        with pytest.raises(ValueError):
            PhaseAdaptiveQueueController(name="x", consecutive_decisions_required=0)


class TestControlParams:
    def test_defaults_are_paper_values(self):
        params = AdaptiveControlParams()
        assert params.interval_instructions == 15_000
        assert params.pll_mean_us == 15.0
        assert params.memory_time_ns == pytest.approx(94.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveControlParams(interval_instructions=10)
        with pytest.raises(ValueError):
            AdaptiveControlParams(cache_hysteresis=0.9)
        with pytest.raises(ValueError):
            AdaptiveControlParams(queue_consecutive_decisions=0)

    def test_time_conversions(self):
        params = AdaptiveControlParams()
        assert params.memory_time_ps == 94_000
        assert params.icache_miss_time_ps == 20_000
