"""Tests for the repro.bench benchmark/regression subsystem."""

from __future__ import annotations

import json

import pytest

from repro.bench.baseline import (
    DEFAULT_TOLERANCE,
    compare_entries,
    load_baseline,
    save_baseline,
)
from repro.bench.environment import EnvironmentFingerprint
from repro.bench.recording import append_entry, latest_entry, load_history
from repro.bench.schema import SCHEMA_VERSION, BenchEntry, BenchRun, validate_entry
from repro.bench.timer import calibrate, timed


def make_entry(seconds=10.0, *, suite="sweep", normalized=100.0, env=None, parameters=None):
    return BenchEntry(
        suite=suite,
        environment=env if env is not None else EnvironmentFingerprint.collect(),
        calibration_seconds=0.1,
        parameters=parameters if parameters is not None else {"quick": True, "window": 2000},
        runs=[
            BenchRun(
                name="figure6_sweep_serial",
                seconds=seconds,
                normalized=normalized,
                simulations=61,
            )
        ],
    )


def other_environment():
    return EnvironmentFingerprint(
        python_version="3.999.0",
        python_implementation="CPython",
        system="Linux",
        machine="x86_64",
        cpu_model="Imaginary CPU @ 9.9GHz",
        cpu_count=128,
    )


class TestEnvironmentFingerprint:
    def test_collect_is_stable(self):
        assert EnvironmentFingerprint.collect() == EnvironmentFingerprint.collect()

    def test_comparable_key_is_stable(self):
        first = EnvironmentFingerprint.collect()
        second = EnvironmentFingerprint.collect()
        assert first.comparable_key() == second.comparable_key()
        assert first.is_comparable_to(second)

    def test_different_hosts_are_not_comparable(self):
        assert not EnvironmentFingerprint.collect().is_comparable_to(other_environment())

    def test_round_trip(self):
        fingerprint = EnvironmentFingerprint.collect()
        assert EnvironmentFingerprint.from_dict(fingerprint.to_dict()) == fingerprint

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing fields"):
            EnvironmentFingerprint.from_dict({"python_version": "3.11.0"})


class TestSchema:
    def test_entry_round_trip(self):
        entry = make_entry(12.345)
        rebuilt = BenchEntry.from_dict(entry.to_dict())
        assert rebuilt.to_dict() == entry.to_dict()
        assert rebuilt.suite == "sweep"
        assert rebuilt.runs[0].name == "figure6_sweep_serial"
        assert rebuilt.runs[0].seconds == pytest.approx(12.345, abs=1e-3)

    def test_entry_round_trip_survives_json(self):
        entry = make_entry(3.21)
        rebuilt = BenchEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert rebuilt.to_dict() == entry.to_dict()

    def test_validate_rejects_missing_keys(self):
        payload = make_entry().to_dict()
        del payload["environment"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_entry(payload)

    def test_validate_rejects_newer_schema(self):
        payload = make_entry().to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            validate_entry(payload)

    def test_validate_rejects_negative_seconds(self):
        payload = make_entry().to_dict()
        payload["runs"][0]["seconds"] = -1.0
        with pytest.raises(ValueError, match="negative seconds"):
            validate_entry(payload)

    def test_entry_helpers(self):
        entry = make_entry(2.0)
        assert entry.total_seconds == pytest.approx(2.0)
        assert entry.run_named("figure6_sweep_serial") is entry.runs[0]
        assert entry.run_named("nope") is None


class TestRegressionDetection:
    def test_no_regression_just_below_tolerance(self):
        baseline = make_entry(10.0)
        current = make_entry(10.0 * (1 + DEFAULT_TOLERANCE) - 0.01)
        assert compare_entries(current, baseline) == []

    def test_regression_fires_just_above_tolerance(self):
        baseline = make_entry(10.0)
        current = make_entry(10.0 * (1 + DEFAULT_TOLERANCE) + 0.01)
        regressions = compare_entries(current, baseline)
        assert len(regressions) == 1
        assert regressions[0].metric == "seconds"
        assert regressions[0].ratio > 1 + DEFAULT_TOLERANCE
        assert "REGRESSION" not in regressions[0].describe()  # describe is the detail line

    def test_exactly_at_tolerance_does_not_fire(self):
        baseline = make_entry(10.0)
        current = make_entry(10.0 * (1 + DEFAULT_TOLERANCE))
        assert compare_entries(current, baseline) == []

    def test_custom_tolerance(self):
        baseline = make_entry(10.0)
        current = make_entry(10.4)
        assert compare_entries(current, baseline, tolerance=0.05) == []
        assert len(compare_entries(current, baseline, tolerance=0.03)) == 1

    def test_incomparable_environments_use_normalized_metric(self):
        # Same raw seconds would regress, but the normalised metric improved:
        # no regression is reported for a faster-host baseline.
        baseline = make_entry(5.0, normalized=100.0, env=other_environment())
        current = make_entry(20.0, normalized=90.0)
        assert compare_entries(current, baseline) == []
        # And a normalised slow-down fires even when raw seconds improved.
        current = make_entry(1.0, normalized=150.0)
        regressions = compare_entries(current, baseline)
        assert len(regressions) == 1
        assert regressions[0].metric == "normalized"

    def test_mismatched_parameters_are_rejected(self):
        baseline = make_entry(10.0, parameters={"quick": True, "window": 2000})
        current = make_entry(10.0, parameters={"quick": False, "window": 6000})
        with pytest.raises(ValueError, match="parameters differ"):
            compare_entries(current, baseline)

    def test_runs_missing_from_baseline_are_ignored(self):
        baseline = make_entry(10.0)
        current = make_entry(10.0)
        current.runs.append(BenchRun(name="brand_new_bench", seconds=99.0, normalized=9e9))
        assert compare_entries(current, baseline) == []


class TestRecordingAndBaseline:
    def test_append_and_load_history(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        append_entry(path, make_entry(1.0))
        append_entry(path, make_entry(2.0))
        history = load_history(path)
        assert list(history) == ["sweep"]
        assert len(history["sweep"]) == 2
        newest = latest_entry(path, "sweep")
        assert newest is not None
        assert newest.runs[0].seconds == pytest.approx(2.0)

    def test_history_limit_drops_oldest(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        for index in range(5):
            append_entry(path, make_entry(float(index)), limit=3)
        history = load_history(path)["sweep"]
        assert len(history) == 3
        assert history[0]["runs"][0]["seconds"] == pytest.approx(2.0)

    def test_corrupt_history_is_tolerated(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text("{not json")
        assert load_history(path) == {}
        append_entry(path, make_entry(1.0))
        assert len(load_history(path)["sweep"]) == 1

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = {"sweep": make_entry(3.0), "fig6": make_entry(1.0, suite="fig6")}
        save_baseline(path, entries)
        loaded = load_baseline(path)
        assert set(loaded) == {"fig6", "sweep"}
        assert loaded["sweep"].to_dict() == entries["sweep"].to_dict()

    def test_missing_baseline_loads_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


class TestTimer:
    def test_timed_returns_result_and_elapsed(self):
        result, seconds = timed(sum, range(1000))
        assert result == sum(range(1000))
        assert seconds >= 0.0

    def test_calibration_is_positive_and_repeatable_order_of_magnitude(self):
        first = calibrate(repeats=2)
        second = calibrate(repeats=2)
        assert first > 0 and second > 0
        # Same host, same kernel: within a generous factor of each other.
        assert 0.2 < first / second < 5.0
