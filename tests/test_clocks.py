"""Tests for the picosecond time base and domain clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks import (
    DomainClock,
    ghz_to_period_ps,
    ns_to_ps,
    period_ps_to_ghz,
    ps_to_ns,
    us_to_ps,
)


class TestTimeConversions:
    def test_ghz_to_period(self):
        assert ghz_to_period_ps(1.0) == 1000
        assert ghz_to_period_ps(2.0) == 500

    def test_period_to_ghz_roundtrip(self):
        assert period_ps_to_ghz(ghz_to_period_ps(1.4)) == pytest.approx(1.4, rel=1e-2)

    def test_ns_and_us_conversions(self):
        assert ns_to_ps(80.0) == 80_000
        assert us_to_ps(15.0) == 15_000_000
        assert ps_to_ns(1_500) == pytest.approx(1.5)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ghz_to_period_ps(0.0)
        with pytest.raises(ValueError):
            period_ps_to_ghz(0)

    @given(st.floats(min_value=0.2, max_value=5.0))
    def test_roundtrip_is_close_for_any_frequency(self, ghz):
        assert period_ps_to_ghz(ghz_to_period_ps(ghz)) == pytest.approx(ghz, rel=0.01)


class TestDomainClock:
    def test_edges_advance_by_period(self):
        clock = DomainClock("test", 1.0)
        assert clock.next_edge == 0
        clock.advance()
        assert clock.next_edge == 1000
        clock.advance()
        assert clock.next_edge == 2000

    def test_cycle_count_tracks_advances(self):
        clock = DomainClock("test", 2.0)
        for _ in range(5):
            clock.advance()
        assert clock.cycle_count == 5

    def test_frequency_change_takes_effect_next_edge(self):
        clock = DomainClock("test", 1.0)
        clock.advance()  # next edge at 1000
        clock.set_frequency(2.0)
        clock.advance()
        assert clock.next_edge == 1500

    def test_edge_at_or_after_exact_edge(self):
        clock = DomainClock("test", 1.0)
        assert clock.edge_at_or_after(0) == 0

    def test_edge_at_or_after_future_time(self):
        clock = DomainClock("test", 1.0)
        assert clock.edge_at_or_after(1) == 1000
        assert clock.edge_at_or_after(1000) == 1000
        assert clock.edge_at_or_after(2500) == 3000

    def test_edge_at_or_after_does_not_advance(self):
        clock = DomainClock("test", 1.0)
        clock.edge_at_or_after(5000)
        assert clock.next_edge == 0

    def test_jitter_bounds(self):
        clock = DomainClock("test", 1.0, jitter_fraction=0.1, seed=42)
        previous = clock.next_edge
        for _ in range(200):
            current = clock.advance()
            step = current - previous
            assert 900 <= step <= 1100
            previous = current

    def test_jitter_fraction_validation(self):
        with pytest.raises(ValueError):
            DomainClock("test", 1.0, jitter_fraction=0.6)

    def test_set_period_validation(self):
        clock = DomainClock("test", 1.0)
        with pytest.raises(ValueError):
            clock.set_period_ps(0)

    def test_cycles_to_ps(self):
        clock = DomainClock("test", 2.0)
        assert clock.cycles_to_ps(10) == 5000

    @given(st.integers(min_value=0, max_value=10**9))
    def test_edge_at_or_after_is_aligned_and_not_early(self, time_ps):
        clock = DomainClock("prop", 1.6)
        edge = clock.edge_at_or_after(time_ps)
        assert edge >= time_ps
        assert (edge - clock.next_edge) % clock.period_ps == 0
