"""Tests for the picosecond time base and domain clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks import (
    DomainClock,
    ghz_to_period_ps,
    ns_to_ps,
    period_ps_to_ghz,
    ps_to_ns,
    us_to_ps,
)


class TestTimeConversions:
    def test_ghz_to_period(self):
        assert ghz_to_period_ps(1.0) == 1000
        assert ghz_to_period_ps(2.0) == 500

    def test_period_to_ghz_roundtrip(self):
        assert period_ps_to_ghz(ghz_to_period_ps(1.4)) == pytest.approx(1.4, rel=1e-2)

    def test_ns_and_us_conversions(self):
        assert ns_to_ps(80.0) == 80_000
        assert us_to_ps(15.0) == 15_000_000
        assert ps_to_ns(1_500) == pytest.approx(1.5)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ghz_to_period_ps(0.0)
        with pytest.raises(ValueError):
            period_ps_to_ghz(0)

    @given(st.floats(min_value=0.2, max_value=5.0))
    def test_roundtrip_is_close_for_any_frequency(self, ghz):
        assert period_ps_to_ghz(ghz_to_period_ps(ghz)) == pytest.approx(ghz, rel=0.01)


class TestDomainClock:
    def test_edges_advance_by_period(self):
        clock = DomainClock("test", 1.0)
        assert clock.next_edge == 0
        clock.advance()
        assert clock.next_edge == 1000
        clock.advance()
        assert clock.next_edge == 2000

    def test_cycle_count_tracks_advances(self):
        clock = DomainClock("test", 2.0)
        for _ in range(5):
            clock.advance()
        assert clock.cycle_count == 5

    def test_frequency_change_takes_effect_next_edge(self):
        clock = DomainClock("test", 1.0)
        clock.advance()  # next edge at 1000
        clock.set_frequency(2.0)
        clock.advance()
        assert clock.next_edge == 1500

    def test_edge_at_or_after_exact_edge(self):
        clock = DomainClock("test", 1.0)
        assert clock.edge_at_or_after(0) == 0

    def test_edge_at_or_after_future_time(self):
        clock = DomainClock("test", 1.0)
        assert clock.edge_at_or_after(1) == 1000
        assert clock.edge_at_or_after(1000) == 1000
        assert clock.edge_at_or_after(2500) == 3000

    def test_edge_at_or_after_does_not_advance(self):
        clock = DomainClock("test", 1.0)
        clock.edge_at_or_after(5000)
        assert clock.next_edge == 0

    def test_jitter_bounds(self):
        clock = DomainClock("test", 1.0, jitter_fraction=0.1, seed=42)
        previous = clock.next_edge
        for _ in range(200):
            current = clock.advance()
            step = current - previous
            assert 900 <= step <= 1100
            previous = current

    def test_jitter_fraction_validation(self):
        with pytest.raises(ValueError):
            DomainClock("test", 1.0, jitter_fraction=0.6)

    def test_set_period_validation(self):
        clock = DomainClock("test", 1.0)
        with pytest.raises(ValueError):
            clock.set_period_ps(0)

    def test_cycles_to_ps(self):
        clock = DomainClock("test", 2.0)
        assert clock.cycles_to_ps(10) == 5000

    @given(st.integers(min_value=0, max_value=10**9))
    def test_edge_at_or_after_is_aligned_and_not_early(self, time_ps):
        clock = DomainClock("prop", 1.6)
        edge = clock.edge_at_or_after(time_ps)
        assert edge >= time_ps
        assert (edge - clock.next_edge) % clock.period_ps == 0

    def test_edges_before_counts_strictly_earlier_edges(self):
        clock = DomainClock("test", 1.0)  # edges at 0, 1000, 2000, ...
        assert clock.edges_before(0) == 0
        assert clock.edges_before(1) == 1
        assert clock.edges_before(1000) == 1
        assert clock.edges_before(1001) == 2
        assert clock.edges_before(2500) == 3


def jittered_clock(**kwargs) -> DomainClock:
    kwargs.setdefault("jitter_fraction", 0.1)
    kwargs.setdefault("seed", 42)
    return DomainClock("jitter-test", 1.0, **kwargs)


class TestJitteredClock:
    """The jitter stream must be index-addressable: every prediction API
    (edge_at_or_after, edges_before, skip_edges) must agree exactly with the
    edge times a sequence of advance() calls actually produces."""

    def test_stream_reproducible_across_instances(self):
        first = [jittered_clock().advance() for _ in range(1)]
        a, b = jittered_clock(), jittered_clock()
        edges_a = [a.advance() for _ in range(300)]
        edges_b = [b.advance() for _ in range(300)]
        assert edges_a == edges_b
        assert first[0] == edges_a[0]

    def test_different_seed_or_name_changes_stream(self):
        base = [jittered_clock().advance() for _ in range(50)]
        reseeded = jittered_clock(seed=43)
        renamed = DomainClock("other-name", 1.0, jitter_fraction=0.1, seed=42)
        assert [reseeded.advance() for _ in range(50)] != base
        assert [renamed.advance() for _ in range(50)] != base

    def test_skip_edges_matches_individual_advances(self):
        bulk, stepwise = jittered_clock(), jittered_clock()
        bulk.skip_edges(7)
        for _ in range(7):
            stepwise.advance()
        assert bulk.next_edge == stepwise.next_edge
        assert bulk.cycle_count == stepwise.cycle_count
        # And the streams stay locked after the bulk skip.
        assert [bulk.advance() for _ in range(20)] == [
            stepwise.advance() for _ in range(20)
        ]

    def test_skip_then_advance_equals_pure_advances(self):
        mixed, pure = jittered_clock(), jittered_clock()
        mixed.skip_edges(3)
        mixed.advance()
        mixed.skip_edges(5)
        for _ in range(9):
            pure.advance()
        assert mixed.next_edge == pure.next_edge
        assert mixed.cycle_count == pure.cycle_count

    @given(st.integers(min_value=0, max_value=200_000))
    def test_edge_at_or_after_returns_a_true_jittered_edge(self, time_ps):
        clock = jittered_clock()
        probe = clock.edge_at_or_after(time_ps)
        assert probe >= time_ps
        assert probe >= clock.next_edge
        # Enumerate the real edge sequence with an identical clock.
        walker = jittered_clock()
        actual_edges = {walker.next_edge}
        while walker.next_edge < probe:
            actual_edges.add(walker.advance())
        assert probe in actual_edges
        # And the probe must be the *first* such edge.
        assert not any(time_ps <= edge < probe for edge in actual_edges)

    @given(st.integers(min_value=0, max_value=200_000))
    def test_edges_before_agrees_with_skip_edges(self, time_ps):
        clock = jittered_clock()
        count = clock.edges_before(time_ps)
        clock.skip_edges(count)
        # All skipped edges were strictly before time_ps...
        assert clock.next_edge >= time_ps or count == 0
        # ...and none remaining is.
        assert clock.edges_before(time_ps) == 0

    @given(st.integers(min_value=0, max_value=200_000))
    def test_skip_edges_before_is_the_one_pass_equivalent(self, time_ps):
        combined = jittered_clock()
        two_step = jittered_clock()
        count = combined.skip_edges_before(time_ps)
        two_step.skip_edges(two_step.edges_before(time_ps))
        assert count == two_step.cycle_count
        assert combined.cycle_count == two_step.cycle_count
        assert combined.next_edge == two_step.next_edge

    def test_skip_edges_before_on_a_jitter_free_clock(self):
        clock = DomainClock("test", 1.0)  # edges at 0, 1000, 2000, ...
        assert clock.skip_edges_before(2500) == 3
        assert clock.next_edge == 3000
        assert clock.cycle_count == 3
        assert clock.skip_edges_before(3000) == 0

    def test_edge_at_or_after_does_not_advance_jittered_clock(self):
        clock = jittered_clock()
        clock.edge_at_or_after(50_000)
        assert clock.next_edge == 0
        assert clock.cycle_count == 0

    def test_jitter_respects_frequency_change(self):
        clock = jittered_clock()
        clock.advance()
        clock.set_frequency(2.0)  # 500 ps nominal
        previous = clock.next_edge
        for _ in range(100):
            step = clock.advance() - previous
            previous = clock.next_edge
            assert 450 <= step <= 550  # 500 ps +- 5% (jitter_fraction 0.1)
