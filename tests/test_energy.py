"""Tests for the activity-based energy accounting subsystem.

Covers the geometry energy model, the frequency-voltage table, the
per-structure/per-domain report, counter-conservation invariants of the new
activity fields, and round-trips of the extended ``RunResult`` schema
(including old-schema payloads recorded before the energy subsystem).
"""

from __future__ import annotations

import json

import pytest

from golden_digests import TIMING_DIGEST_FIELDS
from repro.analysis.hardware_cost import main as hardware_cost_main
from repro.analysis.metrics import RunResult
from repro.analysis.reporting import energy_table
from repro.core import AdaptiveConfigIndices
from repro.energy import (
    EnergyParams,
    EnergyReport,
    cache_access_energy_nj,
    cache_leakage_mw,
    ed2p_improvement,
    edp_improvement,
    energy_reduction,
    energy_report,
    voltage_for_frequency,
    voltage_scale,
    ways_activated,
)
from repro.energy.params import FREQUENCY_VOLTAGE_TABLE_GHZ_V, NOMINAL_VOLTAGE_V
from repro.engine import SimulationJob, SpecKind, make_engine, run_job
from repro.timing.cacti import CacheGeometry
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def phase_result() -> RunResult:
    return run_job(
        SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BASE_ADAPTIVE,
            use_b_partitions=True,
            phase_adaptive=True,
            window=1_500,
            warmup=1_000,
        )
    )


@pytest.fixture(scope="module")
def synchronous_result() -> RunResult:
    return run_job(
        SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=1_500,
            warmup=1_000,
        )
    )


@pytest.fixture(scope="module")
def program_result() -> RunResult:
    return run_job(
        SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.ADAPTIVE,
            indices=AdaptiveConfigIndices(),
            use_b_partitions=False,
            window=1_500,
            warmup=1_000,
        )
    )


class TestCacheAccessEnergy:
    def test_zero_way_probe_is_free(self):
        geometry = ADAPTIVE_DCACHE_CONFIGS[-1].l1
        assert cache_access_energy_nj(geometry, 0) == 0.0

    def test_energy_grows_with_ways_activated(self):
        geometry = ADAPTIVE_DCACHE_CONFIGS[-1].l1
        energies = [
            cache_access_energy_nj(geometry, ways)
            for ways in range(1, geometry.associativity + 1)
        ]
        assert all(low < high for low, high in zip(energies, energies[1:]))

    def test_energy_grows_with_capacity(self):
        small = CacheGeometry(size_kb=32, associativity=1, sub_banks=8)
        large = CacheGeometry(size_kb=256, associativity=1, sub_banks=8)
        assert cache_access_energy_nj(small, 1) < cache_access_energy_nj(large, 1)

    def test_a_part_access_cheaper_than_full_array(self):
        # The adaptive machine's point: probing a one-way A partition costs
        # far less than a full 8-way access of the same physical array.
        geometry = ADAPTIVE_DCACHE_CONFIGS[-1].l1
        a_part = cache_access_energy_nj(geometry, 1)
        full = cache_access_energy_nj(geometry, geometry.associativity)
        assert a_part < full / 2

    def test_each_configuration_gets_distinct_energies(self):
        geometry = ADAPTIVE_DCACHE_CONFIGS[-1].l1
        a_energies = {
            config.ways: cache_access_energy_nj(geometry, config.ways)
            for config in ADAPTIVE_DCACHE_CONFIGS
        }
        assert len(set(a_energies.values())) == len(a_energies)

    def test_ways_activated_split(self):
        geometry = ADAPTIVE_DCACHE_CONFIGS[-1].l1
        for a_ways in range(1, geometry.associativity + 1):
            a = ways_activated(geometry, a_ways, b_probe=False)
            b = ways_activated(geometry, a_ways, b_probe=True)
            assert a == a_ways
            assert a + b == geometry.associativity

    def test_invalid_ways_rejected(self):
        geometry = ADAPTIVE_DCACHE_CONFIGS[0].l1
        with pytest.raises(ValueError):
            cache_access_energy_nj(geometry, geometry.associativity + 1)
        with pytest.raises(ValueError):
            ways_activated(geometry, 0, b_probe=False)

    def test_leakage_scales_with_capacity(self):
        assert cache_leakage_mw(64) == pytest.approx(2 * cache_leakage_mw(32))
        with pytest.raises(ValueError):
            cache_leakage_mw(-1)


class TestVoltageTable:
    def test_monotonic_and_clamped(self):
        frequencies = [0.1, 0.5, 0.9, 1.1, 1.3, 1.6, 1.9, 2.0, 3.0]
        voltages = [voltage_for_frequency(f) for f in frequencies]
        assert all(low <= high for low, high in zip(voltages, voltages[1:]))
        assert voltages[0] == FREQUENCY_VOLTAGE_TABLE_GHZ_V[0][1]
        assert voltages[-1] == FREQUENCY_VOLTAGE_TABLE_GHZ_V[-1][1]

    def test_table_points_are_exact(self):
        for frequency, voltage in FREQUENCY_VOLTAGE_TABLE_GHZ_V:
            assert voltage_for_frequency(frequency) == pytest.approx(voltage)

    def test_scale_is_quadratic_in_voltage(self):
        frequency = 1.4
        ratio = voltage_for_frequency(frequency) / NOMINAL_VOLTAGE_V
        assert voltage_scale(frequency) == pytest.approx(ratio * ratio)

    def test_params_round_trip(self):
        params = EnergyParams(memory_access_nj=12.5)
        assert EnergyParams.from_dict(params.to_dict()) == params


class TestEnergyReport:
    def test_totals_are_structure_sums(self, phase_result):
        report = energy_report(phase_result)
        assert report.total_nj == pytest.approx(
            sum(entry.total_nj for entry in report.structures)
        )
        assert report.total_nj == pytest.approx(report.dynamic_nj + report.leakage_nj)
        assert report.total_nj > 0
        assert report.leakage_nj > 0

    def test_domain_breakdown_sums_to_total(self, phase_result):
        report = energy_report(phase_result)
        domains = report.by_domain()
        assert sum(bucket["total_nj"] for bucket in domains.values()) == pytest.approx(
            report.total_nj
        )
        for domain in ("front_end", "integer", "floating_point", "load_store"):
            assert domain in domains

    def test_ed_metrics(self, phase_result):
        report = energy_report(phase_result)
        assert report.edp_js == pytest.approx(report.energy_joules * report.delay_seconds)
        assert report.ed2p_js2 == pytest.approx(
            report.energy_joules * report.delay_seconds**2
        )
        assert report.energy_per_instruction_nj == pytest.approx(
            report.total_nj / phase_result.committed_instructions
        )

    def test_control_overhead_only_on_phase_adaptive(
        self, phase_result, synchronous_result, program_result
    ):
        phase_report = energy_report(phase_result)
        assert phase_report.structure("adaptive_control").dynamic_nj > 0
        for result in (synchronous_result, program_result):
            report = energy_report(result)
            with pytest.raises(KeyError):
                report.structure("adaptive_control")

    def test_report_round_trip(self, phase_result):
        report = energy_report(phase_result)
        rebuilt = EnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report

    def test_render_mentions_metrics(self, phase_result):
        rendered = energy_report(phase_result).render()
        assert "ED^2" in rendered
        assert "nJ/instruction" in rendered
        assert "dcache" in rendered

    def test_comparative_metrics_are_consistent(self, synchronous_result, phase_result):
        base = energy_report(synchronous_result)
        cand = energy_report(phase_result)
        assert energy_reduction(synchronous_result, phase_result) == pytest.approx(
            1.0 - cand.total_nj / base.total_nj
        )
        assert edp_improvement(base, cand) == pytest.approx(
            base.edp_js / cand.edp_js - 1.0
        )
        assert ed2p_improvement(base, cand) == pytest.approx(
            base.ed2p_js2 / cand.ed2p_js2 - 1.0
        )

    def test_custom_params_change_the_answer(self, synchronous_result):
        default = energy_report(synchronous_result)
        doubled = energy_report(
            synchronous_result, params=EnergyParams(memory_access_nj=18.0)
        )
        assert doubled.structure("memory").dynamic_nj == pytest.approx(
            2 * default.structure("memory").dynamic_nj
        )

    def test_pre_energy_schema_degrades_gracefully(self, synchronous_result):
        # A result recorded before the subsystem existed: timing fields only.
        data = synchronous_result.to_dict()
        old = RunResult.from_dict({name: data[name] for name in TIMING_DIGEST_FIELDS})
        report = energy_report(old)
        assert report.total_nj > 0  # clock trees still counted
        assert report.structure("dcache").dynamic_nj == 0.0


class TestCounterConservation:
    def test_data_accesses_partition_into_hits_and_misses(self, phase_result):
        result = phase_result
        assert result.loads + result.stores == (
            result.l1d_hits_a + result.l1d_hits_b + result.l1d_misses
        )

    def test_icache_accesses_bounded_by_fetches(self, phase_result):
        # One I-cache probe per fetched block, plus one per miss (the missing
        # instruction is pushed back and re-fetched after the refill).
        result = phase_result
        assert 0 < result.icache_accesses <= result.fetched + result.icache_misses
        assert result.icache_b_hits + result.icache_misses <= result.icache_accesses

    def test_sync_penalties_bounded_by_transfers(self, phase_result):
        assert 0 <= phase_result.sync_penalties <= phase_result.sync_transfers

    def test_dispatch_counters_are_consistent(self, phase_result):
        result = phase_result
        assert (
            result.int_queue_dispatches + result.fp_queue_dispatches
            == result.rob_dispatches
        )
        assert result.rob_dispatches >= result.committed_instructions
        assert result.int_queue_issues <= result.int_queue_dispatches
        assert result.fp_queue_issues <= result.fp_queue_dispatches
        assert result.int_regfile_writes + result.fp_regfile_writes <= result.rob_dispatches

    def test_lsq_and_execution_counters(self, phase_result):
        result = phase_result
        performed = result.loads + result.stores + result.loads_forwarded
        assert performed <= result.lsq_allocations
        assert result.int_alu_ops + result.int_complex_ops >= result.int_queue_issues
        assert result.memory_accesses <= result.l2_misses + 1

    def test_access_profile_covers_every_data_access(
        self, phase_result, program_result
    ):
        # With B partitions enabled the histogram counts A probes plus the
        # fallback B probes; with them disabled it is exactly the A accesses.
        phase_profile = phase_result.cache_access_profile["l1d"]
        assert sum(phase_profile.values()) >= phase_result.loads + phase_result.stores
        program_profile = program_result.cache_access_profile["l1d"]
        assert (
            sum(program_profile.values())
            == program_result.loads + program_result.stores
        )

    def test_adaptive_records_physical_geometry(self, phase_result, synchronous_result):
        physical = ADAPTIVE_DCACHE_CONFIGS[-1]
        assert phase_result.cache_geometries["l1d"]["size_kb"] == physical.l1.size_kb
        assert (
            phase_result.cache_geometries["l1d"]["associativity"]
            == physical.l1.associativity
        )
        # The synchronous machine prices (and leaks) only its configured cache.
        assert synchronous_result.cache_geometries["l1d"]["size_kb"] == 32
        assert synchronous_result.cache_geometries["l1d"]["associativity"] == 1


class TestRunResultRoundTrip:
    def test_every_field_survives_json(self, phase_result):
        rebuilt = RunResult.from_dict(json.loads(json.dumps(phase_result.to_dict())))
        assert rebuilt == phase_result

    def test_old_schema_payload_still_deserialises(self, phase_result):
        data = phase_result.to_dict()
        old = RunResult.from_dict({name: data[name] for name in TIMING_DIGEST_FIELDS})
        assert old.execution_time_ps == phase_result.execution_time_ps
        assert old.phase_adaptive is False
        assert old.cache_access_profile == {}
        assert old.structure_entries == {}

    def test_disk_cache_round_trips_energy_fields(self, tmp_path):
        job = SimulationJob(
            profile=get_workload("gcc"),
            spec_kind=SpecKind.BEST_SYNCHRONOUS,
            window=800,
            warmup=500,
        )
        first_engine = make_engine(workers=1, cache_dir=tmp_path)
        fresh = first_engine.run(job)
        second_engine = make_engine(workers=1, cache_dir=tmp_path)
        cached = second_engine.run(job)
        assert second_engine.stats.simulations == 0
        assert cached == fresh
        assert energy_report(cached).total_nj == pytest.approx(
            energy_report(fresh).total_nj
        )


class TestEnergyColumns:
    def test_energy_table_renders(self, synchronous_result, phase_result, program_result):
        from repro.analysis.sweep import WorkloadComparison

        row = WorkloadComparison(
            workload="gcc",
            synchronous=synchronous_result,
            program_adaptive=program_result,
            phase_adaptive=phase_result,
            program_best_indices=AdaptiveConfigIndices(),
        )
        rendered = energy_table([row])
        assert "dE phase" in rendered
        assert "gcc" in rendered
        assert row.phase_energy_reduction == pytest.approx(
            energy_reduction(synchronous_result, phase_result)
        )
        assert row.program_edp_improvement == pytest.approx(
            edp_improvement(synchronous_result, program_result)
        )


class TestHardwareCostCLI:
    def test_main_renders_table4(self, capsys):
        assert hardware_cost_main([]) == 0
        output = capsys.readouterr().out
        assert "4647" in output
        assert "MRU and hit counters" in output
        assert "ILP tracker storage" in output
